"""Topology event streams as :class:`~repro.resilience.plan.FaultPlan` data.

A stream schedule is just a fault plan whose rounds come from a Poisson
arrival process (or from a trace file), so the whole campaign machinery
— per-event seeded generators, backend-identical victim draws,
JSON round-tripping — is reused unchanged.

:func:`poisson_plan` generates **explicit** events: churn events carry
concrete ``add_edges``/``remove_edges`` (maintained against a simulated
copy of the edge set, so consecutive events stay consistent — no
"remove absent edge" surprises) and perturb events carry concrete
victim nodes.  Explicit events keep the vectorized engine on its array
fast paths: an explicit single-edge churn patches the cached CSR
in-place (:meth:`~repro.graphs.graph.Graph.with_updates`) instead of
decoding the whole configuration.

Rates are in events per synchronous round.  Inter-arrival gaps are
exponential with mean ``1 / rate``; fractional arrival times accumulate
before rounding, so the long-run rate is exact even when ``rate > 1``
(several events then share a round, which the campaign round semantics
already allow).
"""

from __future__ import annotations

import json
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.graphs.graph import Graph
from repro.resilience.plan import FaultEvent, FaultPlan

__all__ = ["load_trace", "poisson_plan"]

#: Event kinds :func:`poisson_plan` can draw.  ``crash`` implies paired
#: ``rejoin`` events; the default mix keeps the node set alive, which
#: chunked soak regeneration relies on.
STREAM_KINDS = ("churn", "perturb", "message_dup", "crash")


def _canon(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u <= v else (v, u)


def poisson_plan(
    graph: Graph,
    *,
    rate: float,
    events: int,
    seed: int = 0,
    kinds: Sequence[str] = ("churn", "perturb"),
    start_round: int = 0,
) -> FaultPlan:
    """A Poisson schedule of ``events`` explicit topology/state events.

    ``rate`` is the expected number of events per synchronous round.
    Each arrival draws its kind uniformly from ``kinds``:

    * ``churn`` — toggle one link: remove a random present edge or add a
      random absent pair (50/50 where both are possible), tracked
      against a simulated edge set so the sequence is always applicable;
    * ``perturb`` / ``message_dup`` — redraw one random node's state
      (explicit victim, so backends select identically without a draw
      at apply time);
    * ``crash`` — fail-stop one alive node; each subsequent crash slot
      rejoins *all* crashed nodes with probability one half, so crashes
      never accumulate without bound.

    The plan seed is ``seed``; per-event apply-time randomness (the
    perturb redraws) still comes from the plan's own per-event
    generators, independent of this schedule generator.
    """
    if rate <= 0:
        raise ExperimentError(f"event rate must be > 0, got {rate}")
    if events < 0:
        raise ExperimentError(f"event count must be >= 0, got {events}")
    unknown = [k for k in kinds if k not in STREAM_KINDS]
    if unknown:
        raise ExperimentError(
            f"unknown stream kinds {unknown}; known: {list(STREAM_KINDS)}"
        )
    if not kinds:
        raise ExperimentError("need at least one event kind")
    rng = np.random.default_rng(np.random.SeedSequence([int(seed), 0x57EA]))
    nodes = sorted(int(v) for v in graph.nodes)
    n = len(nodes)
    edge_set = {_canon(int(u), int(v)) for u, v in graph.edges}
    down: dict[int, list[Tuple[int, int]]] = {}
    clock = float(start_round)
    out = []
    for _ in range(events):
        clock += rng.exponential(1.0 / rate)
        rnd = int(clock)
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind == "churn":
            ev = _churn_event(rnd, rng, nodes, edge_set, down)
        elif kind in ("perturb", "message_dup"):
            alive = [v for v in nodes if v not in down]
            victim = alive[int(rng.integers(len(alive)))]
            ev = FaultEvent(round=rnd, kind=kind, nodes=(victim,))
        else:  # crash / rejoin pairing
            ev = _crash_event(rnd, rng, nodes, edge_set, down)
        if ev is not None:
            out.append(ev)
    return FaultPlan(events=tuple(out), seed=int(seed))


def _churn_event(rnd, rng, nodes, edge_set, down):
    """Toggle one link among alive endpoints; updates ``edge_set``."""
    alive = [v for v in nodes if v not in down]
    candidates = sorted(
        e for e in edge_set if e[0] not in down and e[1] not in down
    )
    can_add = len(alive) >= 2
    remove_first = bool(candidates) and (not can_add or rng.random() < 0.5)
    if remove_first:
        edge = candidates[int(rng.integers(len(candidates)))]
        edge_set.discard(edge)
        return FaultEvent(round=rnd, kind="churn", remove_edges=(edge,))
    if can_add:
        for _ in range(64):  # rejection-sample an absent pair
            i = int(rng.integers(len(alive)))
            j = int(rng.integers(len(alive)))
            if i == j:
                continue
            edge = _canon(alive[i], alive[j])
            if edge not in edge_set:
                edge_set.add(edge)
                return FaultEvent(round=rnd, kind="churn", add_edges=(edge,))
    if candidates:  # dense graph: fall back to a removal
        edge = candidates[int(rng.integers(len(candidates)))]
        edge_set.discard(edge)
        return FaultEvent(round=rnd, kind="churn", remove_edges=(edge,))
    return None  # nothing togglable (degenerate graph)


def _crash_event(rnd, rng, nodes, edge_set, down):
    """Crash one alive node, or rejoin everyone; updates the trackers."""
    if down and rng.random() < 0.5:
        for edges in down.values():
            edge_set.update(edges)
        down.clear()
        return FaultEvent(round=rnd, kind="rejoin")
    alive = [v for v in nodes if v not in down]
    if len(alive) <= 1:  # keep at least one node alive
        return None
    victim = alive[int(rng.integers(len(alive)))]
    incident = sorted(e for e in edge_set if victim in e)
    down[victim] = incident
    edge_set.difference_update(incident)
    return FaultEvent(round=rnd, kind="crash", nodes=(victim,))


def load_trace(path) -> FaultPlan:
    """Read a trace schedule: FaultPlan JSON, or JSONL of event objects.

    A file whose JSON root is an object with ``events`` is parsed as a
    full :class:`FaultPlan` (``FaultPlan.load`` format).  Otherwise each
    non-empty line must be one event object; a line ``{"seed": N}``
    (anywhere) sets the plan seed instead of adding an event.
    """
    with open(str(path), "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict) and "events" in data:
        return FaultPlan.from_dict(data)
    events = []
    seed = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ExperimentError(
                f"trace line {lineno} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(obj, dict):
            raise ExperimentError(f"trace line {lineno} must be an object")
        if set(obj) == {"seed"}:
            seed = int(obj["seed"])
            continue
        events.append(FaultEvent.from_dict(obj))
    return FaultPlan(events=tuple(events), seed=seed)
