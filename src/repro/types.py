"""Shared type aliases used across the :mod:`repro` package.

The paper models the network as an undirected graph ``G = (V, E)`` whose
vertices carry unique, totally ordered identifiers.  Throughout this
library node identifiers are plain ``int`` values; the total order on
``int`` is the identifier order assumed by both Algorithm SMM (rule R2
selects the *minimum-id* null neighbour) and Algorithm SIS (the
guards compare neighbour ids).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional, Tuple, TypeVar

#: A node identifier.  Must be hashable and totally ordered; the library
#: uses ``int`` everywhere, and graph generators always produce ints.
NodeId = int

#: An undirected edge, canonically stored with the smaller endpoint first.
Edge = Tuple[NodeId, NodeId]

#: The local state of a node under some protocol (protocol specific).
S = TypeVar("S")

#: Pointer value used by the matching protocols: ``None`` encodes the
#: paper's null pointer ``i -> *``; an integer encodes ``i -> j``.
Pointer = Optional[NodeId]

#: Read-only view of a full configuration (node id -> local state).
ConfigurationView = Mapping[NodeId, object]

#: Anything acceptable as a dictionary key in user-facing result tables.
Key = Hashable


def canonical_edge(u: NodeId, v: NodeId) -> Edge:
    """Return the canonical (sorted) representation of the edge ``{u, v}``.

    >>> canonical_edge(3, 1)
    (1, 3)
    """
    if u == v:
        raise ValueError(f"self-loop edge ({u!r}, {v!r}) is not allowed")
    return (u, v) if u < v else (v, u)
