"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.graph import Graph


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(
    params=["cycle6", "path7", "star6", "k5", "grid3x3", "tree9", "er12"]
)
def small_graph(request) -> Graph:
    """A small connected graph of each structural family."""
    name = request.param
    if name == "cycle6":
        return cycle_graph(6)
    if name == "path7":
        return path_graph(7)
    if name == "star6":
        return star_graph(6)
    if name == "k5":
        return complete_graph(5)
    if name == "grid3x3":
        return grid_graph(3, 3)
    if name == "tree9":
        return random_tree(9, rng=7)
    if name == "er12":
        return erdos_renyi_graph(12, 0.3, rng=11)
    raise AssertionError(name)


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def connected_graphs(draw, min_n: int = 2, max_n: int = 12):
    """A random connected graph: a random tree plus random extra edges."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    gen = np.random.default_rng(seed)
    g = random_tree(n, gen)
    extra = draw(st.integers(0, max(0, n * (n - 1) // 2 - (n - 1))))
    candidates = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not g.has_edge(u, v)
    ]
    gen.shuffle(candidates)
    add = candidates[: min(extra, len(candidates))]
    return g.with_edges(add=add)


@st.composite
def pointer_configurations(draw, graph: Graph):
    """A uniformly random pointer configuration for a matching protocol."""
    states = {}
    for node in graph.nodes:
        options = [None, *graph.neighbors(node)]
        states[node] = draw(st.sampled_from(options))
    return states


@st.composite
def bit_configurations(draw, graph: Graph):
    """A uniformly random 0/1 configuration."""
    return {node: draw(st.integers(0, 1)) for node in graph.nodes}


@st.composite
def graphs_with_pointers(draw, min_n: int = 2, max_n: int = 10):
    g = draw(connected_graphs(min_n, max_n))
    cfg = draw(pointer_configurations(g))
    return g, cfg


@st.composite
def graphs_with_bits(draw, min_n: int = 2, max_n: int = 10):
    g = draw(connected_graphs(min_n, max_n))
    cfg = draw(bit_configurations(g))
    return g, cfg
