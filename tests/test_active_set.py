"""Equivalence tests for the active-set ("dirty node") round stepping.

The optimization in :func:`repro.core.executor.run_synchronous` and in
the vectorized kernels re-evaluates only nodes whose closed
neighbourhood changed since the previous round.  These tests pin the
optimized paths to the full-scan reference: for every graph, start
configuration, and budget, the two must produce *identical* Execution
records — same histories, same move logs, same per-rule counts — not
merely the same fixpoint.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.executor import run_synchronous
from repro.core.faults import random_configuration
from repro.errors import StabilizationTimeout
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.smm_vectorized import VectorizedSMM
from repro.matching.variants import RandomizedSMM
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.sis_vectorized import VectorizedSIS

from conftest import graphs_with_bits, graphs_with_pointers

SMM = SynchronousMaximalMatching()
SIS = SynchronousMaximalIndependentSet()


def assert_executions_equal(a, b):
    """Byte-identical round semantics: every observable field matches."""
    assert a.stabilized == b.stabilized
    assert a.rounds == b.rounds
    assert a.moves == b.moves
    assert a.moves_by_rule == b.moves_by_rule
    assert a.initial == b.initial
    assert a.final == b.final
    assert a.move_log == b.move_log
    assert a.history == b.history
    assert a.legitimate == b.legitimate


class TestExecutorActiveSet:
    @settings(max_examples=40, deadline=None)
    @given(graphs_with_pointers(min_n=2, max_n=10))
    def test_smm_matches_full_scan(self, graph_and_config):
        g, cfg = graph_and_config
        full = run_synchronous(SMM, g, cfg, record_history=True, active_set=False)
        fast = run_synchronous(SMM, g, cfg, record_history=True, active_set=True)
        assert_executions_equal(full, fast)

    @settings(max_examples=40, deadline=None)
    @given(graphs_with_bits(min_n=2, max_n=10))
    def test_sis_matches_full_scan(self, graph_and_config):
        g, cfg = graph_and_config
        full = run_synchronous(SIS, g, cfg, record_history=True, active_set=False)
        fast = run_synchronous(SIS, g, cfg, record_history=True, active_set=True)
        assert_executions_equal(full, fast)

    def test_larger_random_graphs(self, rng):
        for seed in range(4):
            g = erdos_renyi_graph(48, 0.08, rng=seed)
            for protocol in (SMM, SIS):
                cfg = random_configuration(protocol, g, rng)
                full = run_synchronous(
                    protocol, g, cfg, record_history=True, active_set=False
                )
                fast = run_synchronous(
                    protocol, g, cfg, record_history=True, active_set=True
                )
                assert_executions_equal(full, fast)

    @pytest.mark.parametrize("budget", [0, 1, 2, 3])
    def test_timeout_paths_match(self, budget, rng):
        g = cycle_graph(8)
        cfg = random_configuration(SMM, g, rng)
        kwargs = dict(max_rounds=budget, record_history=True, raise_on_timeout=False)
        full = run_synchronous(SMM, g, cfg, active_set=False, **kwargs)
        fast = run_synchronous(SMM, g, cfg, active_set=True, **kwargs)
        assert_executions_equal(full, fast)

    def test_timeout_raises_identically(self):
        g = path_graph(16)
        clean = {i: None for i in g.nodes}
        with pytest.raises(StabilizationTimeout):
            run_synchronous(
                SMM, g, clean, max_rounds=1, raise_on_timeout=True, active_set=True
            )

    def test_randomized_protocol_unaffected(self):
        # randomized protocols redraw variates every round, so active-set
        # tracking is disabled for them; same seed => same run regardless
        g = cycle_graph(9)
        proto = RandomizedSMM()
        clean = {i: None for i in g.nodes}
        full = run_synchronous(
            proto, g, clean, rng=7, record_history=True, active_set=False
        )
        fast = run_synchronous(
            proto, g, clean, rng=7, record_history=True, active_set=True
        )
        assert_executions_equal(full, fast)

    def test_already_stable_start(self):
        g = star_graph(6)
        # center matched with leaf 1, other leaves dead-ended at None
        cfg = {0: 1, 1: 0, **{i: None for i in range(2, 6)}}
        fast = run_synchronous(SMM, g, cfg, active_set=True)
        assert fast.stabilized and fast.rounds == 0 and fast.moves == 0


class TestVectorizedActiveSet:
    @settings(max_examples=30, deadline=None)
    @given(graphs_with_pointers(min_n=2, max_n=10))
    def test_smm_kernel(self, graph_and_config):
        g, cfg = graph_and_config
        vec = VectorizedSMM(g)
        full = vec.run(cfg, active_set=False)
        fast = vec.run(cfg, active_set=True)
        assert full.rounds == fast.rounds
        assert full.moves == fast.moves
        assert full.moves_by_rule == fast.moves_by_rule
        assert full.stabilized == fast.stabilized
        assert vec.decode(full.final_ptr) == vec.decode(fast.final_ptr)

    @settings(max_examples=30, deadline=None)
    @given(graphs_with_bits(min_n=2, max_n=10))
    def test_sis_kernel(self, graph_and_config):
        g, cfg = graph_and_config
        vec = VectorizedSIS(g)
        full = vec.run(cfg, active_set=False)
        fast = vec.run(cfg, active_set=True)
        assert full.rounds == fast.rounds
        assert full.moves == fast.moves
        assert full.stabilized == fast.stabilized
        assert np.array_equal(full.final_x, fast.final_x)

    def test_smm_kernel_budget(self, rng):
        g = cycle_graph(12)
        cfg = random_configuration(SMM, g, rng)
        vec = VectorizedSMM(g)
        for budget in (0, 1, 2):
            full = vec.run(cfg, max_rounds=budget, active_set=False)
            fast = vec.run(cfg, max_rounds=budget, active_set=True)
            assert full.rounds == fast.rounds
            assert full.stabilized == fast.stabilized
            assert vec.decode(full.final_ptr) == vec.decode(fast.final_ptr)

    def test_smm_kernel_large(self, rng):
        for seed in range(3):
            g = erdos_renyi_graph(64, 0.06, rng=seed)
            cfg = random_configuration(SMM, g, rng)
            vec = VectorizedSMM(g)
            full = vec.run(cfg, active_set=False)
            fast = vec.run(cfg, active_set=True)
            assert full.moves_by_rule == fast.moves_by_rule
            assert vec.decode(full.final_ptr) == vec.decode(fast.final_ptr)

    def test_sis_kernel_cascade(self):
        # the Θ(n) worst case — long sparse frontier, where the active
        # path actually skips work — must still match round for round
        g = path_graph(96)
        vec = VectorizedSIS(g)
        cfg = {i: 0 for i in g.nodes}
        full = vec.run(cfg, active_set=False)
        fast = vec.run(cfg, active_set=True)
        assert full.rounds == fast.rounds
        assert np.array_equal(full.final_x, fast.final_x)


class TestE3StyleHistories:
    def test_identical_histories_on_e3_sweep(self, rng):
        """The E3 acceptance check: identical Execution histories over
        the transition-diagram sweep shapes."""
        from repro.graphs.generators import random_tree

        sweeps = [cycle_graph(8), random_tree(8, rng=3), cycle_graph(16)]
        for g in sweeps:
            for _ in range(5):
                cfg = random_configuration(SMM, g, rng)
                full = run_synchronous(
                    SMM, g, cfg, record_history=True, active_set=False
                )
                fast = run_synchronous(
                    SMM, g, cfg, record_history=True, active_set=True
                )
                assert_executions_equal(full, fast)
