"""Tests for the mobility models."""

import numpy as np
import pytest

from repro.adhoc.mobility import RandomWalk, RandomWaypoint, StaticPlacement
from repro.errors import SimulationError


class TestStaticPlacement:
    def test_positions_fixed(self):
        coords = np.array([[0.1, 0.2], [0.7, 0.8]])
        m = StaticPlacement(coords)
        assert np.array_equal(m.position(0, 0.0), coords[0])
        assert np.array_equal(m.position(0, 100.0), coords[0])

    def test_uniform_factory(self):
        m = StaticPlacement.uniform(10, rng=1)
        p = m.positions(5.0)
        assert p.shape == (10, 2)
        assert (p >= 0).all() and (p <= 1).all()

    def test_uniform_reproducible(self):
        a = StaticPlacement.uniform(5, rng=3).positions(0)
        b = StaticPlacement.uniform(5, rng=3).positions(0)
        assert np.array_equal(a, b)

    def test_bad_shape_rejected(self):
        with pytest.raises(SimulationError):
            StaticPlacement(np.zeros((3, 3)))

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            StaticPlacement(np.zeros((0, 2)))


class TestRandomWaypoint:
    def test_positions_in_unit_square(self):
        m = RandomWaypoint(8, rng=1)
        for t in (0.0, 3.7, 50.0, 400.0):
            p = m.positions(t)
            assert (p >= -1e-9).all() and (p <= 1 + 1e-9).all()

    def test_continuity(self):
        """Positions move at bounded speed — no teleporting."""
        m = RandomWaypoint(4, v_min=0.02, v_max=0.05, pause=1.0, rng=2)
        prev = m.positions(0.0)
        for step in range(1, 200):
            t = step * 0.5
            cur = m.positions(t)
            dist = np.linalg.norm(cur - prev, axis=1)
            assert (dist <= 0.05 * 0.5 + 1e-9).all()
            prev = cur

    def test_reproducible_across_query_patterns(self):
        """Lazy trajectory extension must not depend on query order."""
        a = RandomWaypoint(3, rng=9)
        b = RandomWaypoint(3, rng=9)
        # a queried densely, b sparsely — same trajectory
        for step in range(100):
            a.position(0, step * 0.1)
        assert np.allclose(a.position(0, 10.0), b.position(0, 10.0))

    def test_eventually_moves(self):
        m = RandomWaypoint(2, v_min=0.05, v_max=0.1, pause=0.0, rng=3)
        assert not np.allclose(m.positions(0.0), m.positions(30.0))

    def test_invalid_speeds(self):
        with pytest.raises(SimulationError):
            RandomWaypoint(2, v_min=0.0, v_max=0.1)
        with pytest.raises(SimulationError):
            RandomWaypoint(2, v_min=0.2, v_max=0.1)

    def test_negative_pause_rejected(self):
        with pytest.raises(SimulationError):
            RandomWaypoint(2, pause=-1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            RandomWaypoint(2, rng=1).position(0, -0.5)


class TestRandomWalk:
    def test_positions_in_unit_square(self):
        m = RandomWalk(6, rng=4)
        for t in (0.0, 10.0, 120.0):
            p = m.positions(t)
            assert (p >= -1e-9).all() and (p <= 1 + 1e-9).all()

    def test_reproducible(self):
        a = RandomWalk(3, rng=5).position(1, 42.0)
        b = RandomWalk(3, rng=5).position(1, 42.0)
        assert np.allclose(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            RandomWalk(2, speed=0.0)
        with pytest.raises(SimulationError):
            RandomWalk(2, mean_leg_time=0.0)

    def test_zero_nodes_rejected(self):
        with pytest.raises(SimulationError):
            RandomWalk(0)
