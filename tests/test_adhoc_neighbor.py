"""Tests for the beacon-driven neighbour table."""

import pytest

from repro.adhoc.messages import Beacon
from repro.adhoc.neighbor import NeighborTable
from repro.errors import SimulationError


def beacon(sender, time, state=None, rand=0.5, seq=1):
    return Beacon(sender=sender, time=time, state=state, rand=rand, seq=seq)


class TestRecord:
    def test_new_neighbor_detected(self):
        t = NeighborTable(owner=0, timeout=2.5)
        assert t.record(beacon(1, 1.0)) is True
        assert t.record(beacon(1, 2.0, seq=2)) is False

    def test_state_updated(self):
        t = NeighborTable(owner=0, timeout=2.5)
        t.record(beacon(1, 1.0, state="a"))
        t.record(beacon(1, 2.0, state="b", seq=2))
        assert t.states() == {1: "b"}

    def test_own_beacon_rejected(self):
        t = NeighborTable(owner=0, timeout=2.5)
        with pytest.raises(SimulationError):
            t.record(beacon(0, 1.0))

    def test_fifo_violation_detected(self):
        t = NeighborTable(owner=0, timeout=2.5)
        t.record(beacon(1, 1.0, seq=5))
        with pytest.raises(SimulationError):
            t.record(beacon(1, 2.0, seq=5))

    def test_rands_exposed(self):
        t = NeighborTable(owner=0, timeout=2.5)
        t.record(beacon(1, 1.0, rand=0.25))
        assert t.rands() == {1: 0.25}


class TestPurge:
    def test_stale_neighbor_evicted(self):
        t = NeighborTable(owner=0, timeout=2.0)
        t.record(beacon(1, 0.0))
        t.record(beacon(2, 1.5))
        evicted = t.purge(now=2.5)
        assert evicted == (1,)
        assert t.neighbors() == (2,)

    def test_fresh_neighbors_kept(self):
        t = NeighborTable(owner=0, timeout=2.0)
        t.record(beacon(1, 1.0))
        assert t.purge(now=2.0) == ()
        assert t.knows(1)

    def test_timer_reset_on_beacon(self):
        """'Upon receiving a beacon signal from neighbor j, node i
        resets its appropriate timer.'"""
        t = NeighborTable(owner=0, timeout=2.0)
        t.record(beacon(1, 0.0))
        t.record(beacon(1, 1.9, seq=2))
        assert t.purge(now=3.0) == ()

    def test_rediscovery_after_eviction(self):
        t = NeighborTable(owner=0, timeout=1.0)
        t.record(beacon(1, 0.0, seq=9))
        t.purge(now=5.0)
        # rediscovery restarts the FIFO sequence
        assert t.record(beacon(1, 6.0, seq=1)) is True


class TestBasics:
    def test_invalid_timeout(self):
        with pytest.raises(SimulationError):
            NeighborTable(owner=0, timeout=0.0)

    def test_neighbors_sorted(self):
        t = NeighborTable(owner=0, timeout=5.0)
        t.record(beacon(3, 1.0))
        t.record(beacon(1, 1.0))
        assert t.neighbors() == (1, 3)

    def test_len(self):
        t = NeighborTable(owner=0, timeout=5.0)
        assert len(t) == 0
        t.record(beacon(1, 1.0))
        assert len(t) == 1
