"""Tests for the event-driven beacon simulator."""

import numpy as np
import pytest

from repro.adhoc.mobility import StaticPlacement
from repro.adhoc.network import AdHocNetwork, _BelievedGraph
from repro.errors import SimulationError
from repro.graphs.generators import random_geometric_graph
from repro.graphs.properties import (
    greedy_mis_by_descending_id,
    is_maximal_matching,
    pointer_matching,
)
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet

RADIUS = 0.45


def placement(n=12, seed=3):
    g, pos = random_geometric_graph(n, RADIUS, rng=seed, return_positions=True)
    return g, StaticPlacement(pos)


class TestConstruction:
    @pytest.mark.parametrize(
        "kw",
        [
            {"radius": 0.0},
            {"t_b": 0.0},
            {"jitter": 1.0},
            {"loss": 1.0},
            {"timeout_factor": 1.0},
        ],
    )
    def test_invalid_parameters(self, kw):
        _, pl = placement()
        base = dict(radius=RADIUS)
        base.update(kw)
        with pytest.raises(SimulationError):
            AdHocNetwork(SynchronousMaximalIndependentSet(), pl, **base)

    def test_initial_states_default_clean(self):
        _, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS)
        assert all(s == 0 for s in net.configuration().values())

    def test_initial_states_override(self):
        _, pl = placement()
        states = {i: 1 for i in range(12)}
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            initial_states=states,
        )
        assert net.configuration() == states


class TestConvergence:
    def test_sis_reaches_greedy_set(self):
        g, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1)
        net.run_until(40.0)
        cfg = net.configuration()
        in_set = {i for i, s in cfg.items() if s == 1}
        assert in_set == greedy_mis_by_descending_id(g)
        assert net.is_legitimate()

    def test_smm_reaches_maximal_matching(self):
        g, pl = placement()
        net = AdHocNetwork(SynchronousMaximalMatching(), pl, radius=RADIUS, rng=1)
        net.run_until(60.0)
        m = pointer_matching(net.configuration().as_dict())
        assert is_maximal_matching(g, m)

    def test_converges_despite_loss(self):
        g, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1, loss=0.2
        )
        net.run_until(120.0)
        assert net.is_legitimate()

    def test_converges_from_corrupt_start(self):
        g, pl = placement()
        states = {i: 1 for i in range(12)}  # everyone claims membership
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            rng=2,
            initial_states=states,
        )
        net.run_until(60.0)
        assert net.is_legitimate()


class TestAccounting:
    def test_beacon_counts_accumulate(self):
        _, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1)
        net.run_until(10.0)
        # ~10 beacons per node in 10 s at t_b = 1
        assert 8 * 12 <= net.total_beacons() <= 12 * 12

    def test_local_rounds_advance(self):
        _, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1)
        net.run_until(10.0)
        assert all(nd.local_round > 0 for nd in net.nodes.values())

    def test_trace_recording(self):
        _, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1, trace=True
        )
        net.run_until(5.0)
        kinds = {e.kind for e in net.trace}
        assert "beacon" in kinds and "step" in kinds and "link-up" in kinds

    def test_cannot_run_backwards(self):
        _, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS)
        net.run_until(5.0)
        with pytest.raises(SimulationError):
            net.run_until(1.0)

    def test_callback_sampling(self):
        _, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1)
        samples = []
        net.run_until(
            10.0,
            callback=lambda n: samples.append(n.now),
            callback_interval=1.0,
        )
        assert len(samples) == 10
        assert samples == sorted(samples)


class TestContentionModel:
    def test_invalid_window_rejected(self):
        _, pl = placement()
        with pytest.raises(SimulationError):
            AdHocNetwork(
                SynchronousMaximalIndependentSet(),
                pl,
                radius=RADIUS,
                contention_window=1.5,  # >= t_b
            )

    def test_collisions_counted_and_traced(self):
        _, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            rng=1,
            contention_window=0.3,
            trace=True,
        )
        net.run_until(20.0)
        assert net.collisions > 0
        assert any(e.kind == "collision" for e in net.trace)

    def test_still_stabilizes_under_contention_with_jitter(self):
        """Ample beacon jitter decorrelates collisions round-to-round,
        so contention becomes an absorbable transient fault."""
        g, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            rng=1,
            jitter=0.2,
            contention_window=0.2,
        )
        net.run_until(150.0)
        assert net.is_legitimate()

    def test_synchronized_beacons_collide_persistently(self):
        """The measured pathology: with near-synchronized beacons the
        same pairs collide every interval — convergence stalls for a
        long time (here: still illegitimate after 150 s)."""
        g, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            rng=1,
            jitter=0.05,
            contention_window=0.2,
        )
        net.run_until(150.0)
        assert not net.is_legitimate()
        assert net.collisions > 1000

    def test_zero_window_no_collisions(self):
        _, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1
        )
        net.run_until(10.0)
        assert net.collisions == 0


class TestBelievedGraph:
    def test_has_edge_owner_incident(self):
        bg = _BelievedGraph(0, (1, 2))
        assert bg.has_edge(0, 1) and bg.has_edge(2, 0)
        assert not bg.has_edge(0, 9)

    def test_foreign_edge_rejected(self):
        bg = _BelievedGraph(0, (1, 2))
        with pytest.raises(SimulationError):
            bg.has_edge(1, 2)

    def test_neighbors_owner_only(self):
        bg = _BelievedGraph(0, (2, 1))
        assert bg.neighbors(0) == (1, 2)
        with pytest.raises(SimulationError):
            bg.neighbors(1)
