"""Tests for the event-driven beacon simulator."""

import numpy as np
import pytest

from repro.adhoc.mobility import StaticPlacement
from repro.adhoc.network import AdHocNetwork, _BelievedGraph
from repro.errors import SimulationError
from repro.graphs.generators import random_geometric_graph
from repro.graphs.properties import (
    greedy_mis_by_descending_id,
    is_maximal_matching,
    pointer_matching,
)
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet

RADIUS = 0.45


def placement(n=12, seed=3):
    g, pos = random_geometric_graph(n, RADIUS, rng=seed, return_positions=True)
    return g, StaticPlacement(pos)


class TestConstruction:
    @pytest.mark.parametrize(
        "kw",
        [
            {"radius": 0.0},
            {"t_b": 0.0},
            {"jitter": 1.0},
            {"loss": 1.5},
            {"loss": -0.1},
            {"timeout_factor": 1.0},
        ],
    )
    def test_invalid_parameters(self, kw):
        _, pl = placement()
        base = dict(radius=RADIUS)
        base.update(kw)
        with pytest.raises(SimulationError):
            AdHocNetwork(SynchronousMaximalIndependentSet(), pl, **base)

    def test_initial_states_default_clean(self):
        _, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS)
        assert all(s == 0 for s in net.configuration().values())

    def test_initial_states_override(self):
        _, pl = placement()
        states = {i: 1 for i in range(12)}
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            initial_states=states,
        )
        assert net.configuration() == states


class TestConvergence:
    def test_sis_reaches_greedy_set(self):
        g, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1)
        net.run_until(40.0)
        cfg = net.configuration()
        in_set = {i for i, s in cfg.items() if s == 1}
        assert in_set == greedy_mis_by_descending_id(g)
        assert net.is_legitimate()

    def test_smm_reaches_maximal_matching(self):
        g, pl = placement()
        net = AdHocNetwork(SynchronousMaximalMatching(), pl, radius=RADIUS, rng=1)
        net.run_until(60.0)
        m = pointer_matching(net.configuration().as_dict())
        assert is_maximal_matching(g, m)

    def test_converges_despite_loss(self):
        g, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1, loss=0.2
        )
        net.run_until(120.0)
        assert net.is_legitimate()

    def test_converges_from_corrupt_start(self):
        g, pl = placement()
        states = {i: 1 for i in range(12)}  # everyone claims membership
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            rng=2,
            initial_states=states,
        )
        net.run_until(60.0)
        assert net.is_legitimate()


class TestAccounting:
    def test_beacon_counts_accumulate(self):
        _, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1)
        net.run_until(10.0)
        # ~10 beacons per node in 10 s at t_b = 1
        assert 8 * 12 <= net.total_beacons() <= 12 * 12

    def test_local_rounds_advance(self):
        _, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1)
        net.run_until(10.0)
        assert all(nd.local_round > 0 for nd in net.nodes.values())

    def test_trace_recording(self):
        _, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1, trace=True
        )
        net.run_until(5.0)
        kinds = {e.kind for e in net.trace}
        assert "beacon" in kinds and "step" in kinds and "link-up" in kinds

    def test_cannot_run_backwards(self):
        _, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS)
        net.run_until(5.0)
        with pytest.raises(SimulationError):
            net.run_until(1.0)

    def test_callback_sampling(self):
        _, pl = placement()
        net = AdHocNetwork(SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1)
        samples = []
        net.run_until(
            10.0,
            callback=lambda n: samples.append(n.now),
            callback_interval=1.0,
        )
        assert len(samples) == 10
        assert samples == sorted(samples)


class TestContentionModel:
    def test_invalid_window_rejected(self):
        _, pl = placement()
        with pytest.raises(SimulationError):
            AdHocNetwork(
                SynchronousMaximalIndependentSet(),
                pl,
                radius=RADIUS,
                contention_window=1.5,  # >= t_b
            )

    def test_collisions_counted_and_traced(self):
        _, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            rng=1,
            contention_window=0.3,
            trace=True,
        )
        net.run_until(20.0)
        assert net.collisions > 0
        assert any(e.kind == "collision" for e in net.trace)

    def test_still_stabilizes_under_contention_with_jitter(self):
        """Ample beacon jitter decorrelates collisions round-to-round,
        so contention becomes an absorbable transient fault."""
        g, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            rng=1,
            jitter=0.2,
            contention_window=0.2,
        )
        net.run_until(150.0)
        assert net.is_legitimate()

    def test_synchronized_beacons_collide_persistently(self):
        """The measured pathology: with near-synchronized beacons the
        same pairs collide every interval — convergence stalls for a
        long time (here: still illegitimate after 150 s)."""
        g, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            rng=1,
            jitter=0.05,
            contention_window=0.2,
        )
        net.run_until(150.0)
        assert not net.is_legitimate()
        assert net.collisions > 1000

    def test_zero_window_no_collisions(self):
        _, pl = placement()
        net = AdHocNetwork(
            SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1
        )
        net.run_until(10.0)
        assert net.collisions == 0


class TestBelievedGraph:
    def test_has_edge_owner_incident(self):
        bg = _BelievedGraph(0, (1, 2))
        assert bg.has_edge(0, 1) and bg.has_edge(2, 0)
        assert not bg.has_edge(0, 9)

    def test_foreign_edge_rejected(self):
        bg = _BelievedGraph(0, (1, 2))
        with pytest.raises(SimulationError):
            bg.has_edge(1, 2)

    def test_neighbors_owner_only(self):
        bg = _BelievedGraph(0, (2, 1))
        assert bg.neighbors(0) == (1, 2)
        with pytest.raises(SimulationError):
            bg.neighbors(1)


class TestFaultExtremes:
    """The boundary cases of the fault model: total beacon loss and the
    fail-stop crash of an already-matched node mid-episode."""

    def line_placement(self, n=6):
        pos = np.array([[float(i), 0.0] for i in range(n)])
        return StaticPlacement(pos)

    def test_total_loss_terminates_illegitimate(self):
        # loss=1.0 means no beacon is ever delivered: no node hears a
        # neighbour, no rule ever fires, and the run must *terminate*
        # with legitimate=False rather than hang waiting for quiescence
        from repro.adhoc.runner import run_until_stable

        pl = self.line_placement()
        bad = {i: (i + 1) % 6 for i in range(6)}  # an illegitimate ring
        result = run_until_stable(
            SynchronousMaximalMatching(),
            pl,
            radius=1.1,
            loss=1.0,
            rng=5,
            initial_states=bad,
            max_time=30.0,
        )
        assert not result.stabilized
        assert result.steps == 0
        assert result.time == 30.0

    def test_total_loss_network_never_steps(self):
        pl = self.line_placement()
        net = AdHocNetwork(
            SynchronousMaximalMatching(), pl, radius=1.1, loss=1.0, rng=5
        )
        net.run_until(40.0)
        assert net.total_beacons() > 0       # senders keep beaconing...
        assert net.total_steps() == 0        # ...but nobody ever hears
        assert all(not nd.heard for nd in net.nodes.values())

    def test_crash_of_matched_node_mid_episode(self):
        # stabilize, crash one endpoint of a matched edge: the surviving
        # partner must evict it after the beacon timeout and re-match /
        # go aloof, restoring legitimacy on the alive subnetwork
        pl = self.line_placement()
        net = AdHocNetwork(SynchronousMaximalMatching(), pl, radius=1.1, rng=2)
        net.run_until(80.0)
        assert net.is_legitimate()
        cfg = net.configuration()
        matched = next(
            i for i in range(6) if cfg[i] is not None and cfg[cfg[i]] == i
        )
        partner = cfg[matched]
        net.crash(matched)
        net.run_until(net.now + 40.0)
        assert net.nodes[partner].state != matched
        assert net.is_legitimate()           # evaluated on the alive subgraph

    def test_crashed_node_is_silent_and_deaf(self):
        pl = self.line_placement()
        net = AdHocNetwork(SynchronousMaximalMatching(), pl, radius=1.1, rng=2)
        net.run_until(10.0)
        sent_before = net.nodes[2].beacons_sent
        net.crash(2)
        net.run_until(net.now + 20.0)
        assert net.nodes[2].beacons_sent == sent_before
        # every alive neighbour evicted the silent node from its table
        for i in (1, 3):
            assert 2 not in net.nodes[i].table.neighbors()

    def test_revive_reintegrates(self):
        pl = self.line_placement()
        net = AdHocNetwork(SynchronousMaximalMatching(), pl, radius=1.1, rng=2)
        net.run_until(80.0)
        victim = 0
        net.crash(victim)
        net.run_until(net.now + 40.0)
        net.revive(victim)
        net.run_until(net.now + 60.0)
        assert not net.crashed
        assert net.is_legitimate()

    def test_crash_bookkeeping_errors(self):
        pl = self.line_placement()
        net = AdHocNetwork(SynchronousMaximalMatching(), pl, radius=1.1, rng=2)
        net.crash(1)
        with pytest.raises(SimulationError):
            net.crash(1)                      # already down
        with pytest.raises(SimulationError):
            net.crash(99)                     # unknown node
        with pytest.raises(SimulationError):
            net.revive(2)                     # not crashed
