"""Deeper behavioural properties of the beacon substrate.

These tests inspect simulation traces to verify model-level guarantees
that the convergence tests only exercise implicitly: FIFO delivery,
round cadence, state-staleness bounds, and eviction behaviour when a
host falls silent.
"""

import numpy as np
import pytest

from repro.adhoc.mobility import StaticPlacement
from repro.adhoc.network import AdHocNetwork
from repro.graphs.generators import random_geometric_graph
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.matching.smm import SynchronousMaximalMatching

RADIUS = 0.45


def make_net(protocol=None, n=10, seed=5, **kw):
    g, pos = random_geometric_graph(n, RADIUS, rng=seed, return_positions=True)
    net = AdHocNetwork(
        protocol or SynchronousMaximalIndependentSet(),
        StaticPlacement(pos),
        radius=RADIUS,
        rng=seed,
        **kw,
    )
    return g, net


class TestBeaconCadence:
    def test_beacon_counts_per_node_uniform(self):
        _, net = make_net()
        net.run_until(20.0)
        counts = [nd.beacons_sent for nd in net.nodes.values()]
        # every node beacons ~ once per t_b: 20 ± jitter slack
        assert all(17 <= c <= 23 for c in counts)

    def test_zero_jitter_exact_cadence(self):
        _, net = make_net(jitter=0.0)
        net.run_until(10.0)
        counts = [nd.beacons_sent for nd in net.nodes.values()]
        # phase-shifted starts but exact 1.0 periods: 10 or 11 beacons
        assert all(c in (10, 11) for c in counts)

    def test_local_rounds_track_beacon_time(self):
        """In a static connected network every node completes roughly
        one round per beacon interval."""
        _, net = make_net()
        net.run_until(30.0)
        for nd in net.nodes.values():
            assert 20 <= nd.local_round <= 40


class TestFifoAndSequence:
    def test_sequence_numbers_strictly_increase(self):
        _, net = make_net(trace=True)
        net.run_until(15.0)
        # per sender, the table's recorded last_seq must equal the
        # sender's own counter — nothing lost at the table level except
        # what distance/loss drops
        for i, sim in net.nodes.items():
            for j in sim.table.neighbors():
                entry_seq = sim.table._entries[j].last_seq
                assert entry_seq <= net.nodes[j].seq


class TestStaleness:
    def test_believed_states_at_most_one_interval_stale(self):
        """Without loss, a believed neighbour state is never older than
        ~one (jittered) beacon interval."""
        _, net = make_net(jitter=0.05)
        net.run_until(12.0)
        now = net.now
        for sim in net.nodes.values():
            for j, entry in sim.table._entries.items():
                assert now - entry.last_heard <= 1.3


class TestSilentNodeEviction:
    def test_dead_node_is_evicted_everywhere(self):
        """Stop one node's beacons; every neighbour evicts it within
        the timeout and the matching repairs around it."""
        g, net = make_net(protocol=SynchronousMaximalMatching(), n=12, seed=7)
        net.run_until(20.0)
        victim = 0
        # silence the victim: drop its pending beacon events
        net._queue = [ev for ev in net._queue if ev[2] != victim]
        import heapq

        heapq.heapify(net._queue)
        net.run_until(20.0 + net.timeout + 5.0)
        for i, sim in net.nodes.items():
            if i == victim:
                continue
            assert not sim.table.knows(victim)
            # nobody still points at the dead node
            assert sim.state != victim

    def test_eviction_trace_events(self):
        g, net = make_net(n=12, seed=7, trace=True)
        net.run_until(10.0)
        net._queue = [ev for ev in net._queue if ev[2] != 3]
        import heapq

        heapq.heapify(net._queue)
        net.run_until(10.0 + net.timeout + 4.0)
        downs = [e for e in net.trace if e.kind == "link-down" and "lost 3" in e.detail]
        true_neighbors = sum(
            1 for i in net.nodes if i != 3 and g.has_edge(i, 3)
        )
        assert len(downs) >= true_neighbors


class TestLossResilience:
    @pytest.mark.parametrize("loss", [0.05, 0.15, 0.3])
    def test_rounds_still_complete_under_loss(self, loss):
        _, net = make_net(loss=loss, seed=9)
        net.run_until(40.0)
        assert all(nd.local_round > 0 for nd in net.nodes.values())

    def test_loss_slows_rounds(self):
        _, lossless = make_net(seed=11)
        _, lossy = make_net(loss=0.3, seed=11)
        lossless.run_until(30.0)
        lossy.run_until(30.0)
        mean = lambda net: np.mean([nd.local_round for nd in net.nodes.values()])
        assert mean(lossy) < mean(lossless)
