"""Tests for the high-level ad hoc runners."""

import pytest

from repro.adhoc.mobility import RandomWaypoint, StaticPlacement
from repro.adhoc.runner import (
    RecoveryEpisode,
    run_until_stable,
    run_with_mobility,
)
from repro.errors import SimulationError
from repro.graphs.generators import random_geometric_graph
from repro.graphs.properties import is_maximal_matching, pointer_matching
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet

RADIUS = 0.45


def make_placement(n=12, seed=3):
    g, pos = random_geometric_graph(n, RADIUS, rng=seed, return_positions=True)
    return g, StaticPlacement(pos)


class TestRunUntilStable:
    def test_sis_stabilizes(self):
        g, pl = make_placement()
        res = run_until_stable(
            SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1
        )
        assert res.stabilized and res.legitimate
        assert res.time > 0 and res.beacon_rounds == res.time  # t_b = 1
        assert res.graph == g

    def test_smm_stabilizes_to_maximal_matching(self):
        g, pl = make_placement()
        res = run_until_stable(SynchronousMaximalMatching(), pl, radius=RADIUS, rng=1)
        assert res.stabilized
        m = pointer_matching(res.final.as_dict())
        assert is_maximal_matching(g, m)

    def test_beacon_time_scales_with_t_b(self):
        _, pl = make_placement()
        fast = run_until_stable(
            SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1, t_b=0.5
        )
        slow = run_until_stable(
            SynchronousMaximalIndependentSet(), pl, radius=RADIUS, rng=1, t_b=2.0
        )
        assert fast.time < slow.time

    def test_timeout_reported_not_raised(self):
        _, pl = make_placement()
        res = run_until_stable(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            rng=1,
            max_time=0.1,
        )
        assert not res.stabilized
        assert res.time == pytest.approx(0.1)

    def test_initial_states_honoured(self):
        g, pl = make_placement()
        start = {i: 1 for i in range(12)}
        res = run_until_stable(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            rng=1,
            initial_states=start,
        )
        assert res.stabilized  # recovers from the corrupt start


class TestRunWithMobility:
    def test_metrics_shape(self):
        mob = RandomWaypoint(10, v_min=0.01, v_max=0.04, rng=2)
        res = run_with_mobility(
            SynchronousMaximalIndependentSet(),
            mob,
            radius=0.5,
            horizon=40.0,
            rng=3,
        )
        assert res.samples > 0
        assert 0.0 <= res.availability <= 1.0
        assert res.legitimate_samples <= res.samples
        assert res.beacons > 0

    def test_static_mobility_high_availability(self):
        _, pl = make_placement()
        res = run_with_mobility(
            SynchronousMaximalIndependentSet(),
            pl,
            radius=RADIUS,
            horizon=60.0,
            rng=1,
        )
        # after initial stabilization the predicate holds forever
        assert res.availability > 0.8
        assert res.topology_changes == 0

    def test_invalid_horizon(self):
        _, pl = make_placement()
        with pytest.raises(SimulationError):
            run_with_mobility(
                SynchronousMaximalIndependentSet(), pl, radius=RADIUS, horizon=0.0
            )

    def test_episodes_well_formed(self):
        mob = RandomWaypoint(10, v_min=0.02, v_max=0.06, rng=5)
        res = run_with_mobility(
            SynchronousMaximalIndependentSet(),
            mob,
            radius=0.5,
            horizon=60.0,
            rng=6,
        )
        for ep in res.episodes:
            assert ep.end >= ep.start >= 0.0
        if res.episodes:
            assert res.mean_recovery_time() > 0

    def test_mean_recovery_none_without_episodes(self):
        from repro.adhoc.runner import MobilityResult

        res = MobilityResult(
            horizon=1.0,
            samples=2,
            legitimate_samples=2,
            availability=1.0,
            episodes=[],
            topology_changes=0,
            beacons=0,
            steps=0,
            final=None,
        )
        assert res.mean_recovery_time() is None

    def test_recovery_episode_duration(self):
        assert RecoveryEpisode(2.0, 5.0).duration == 3.0
