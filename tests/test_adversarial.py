"""Tests for the adversarial initial-configuration constructors."""

import pytest

from repro.core.executor import run_synchronous
from repro.errors import GraphError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.matching.adversarial import (
    adversarial_configurations,
    all_null,
    pessimal_cycle,
    proposal_chain,
    reverse_proposal_chain,
    worst_case_rounds,
)
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.verify import verify_execution

SMM = SynchronousMaximalMatching()


class TestConstructors:
    def test_all_null(self):
        g = cycle_graph(5)
        assert all(v is None for v in all_null(g).values())

    def test_proposal_chain_on_path(self):
        g = path_graph(4)
        cfg = proposal_chain(g)
        assert cfg[0] == 1 and cfg[1] == 2 and cfg[2] == 3
        assert cfg[3] is None

    def test_reverse_chain_on_path(self):
        g = path_graph(4)
        cfg = reverse_proposal_chain(g)
        assert cfg[3] == 2 and cfg[1] == 0
        assert cfg[0] is None

    def test_chains_are_valid_configurations(self):
        g = erdos_renyi_graph(12, 0.3, rng=1)
        SMM.validate_configuration(g, proposal_chain(g))
        SMM.validate_configuration(g, reverse_proposal_chain(g))

    def test_pessimal_cycle(self):
        g = cycle_graph(6)
        cfg = pessimal_cycle(g)
        assert all(cfg[i] == (i + 1) % 6 for i in range(6))

    def test_pessimal_cycle_rejects_non_cycles(self):
        with pytest.raises(GraphError):
            pessimal_cycle(path_graph(5))

    def test_adversarial_configurations_labels(self):
        labels = {name for name, _ in adversarial_configurations(cycle_graph(6))}
        assert labels == {
            "all-null",
            "proposal-chain",
            "reverse-chain",
            "pessimal-cycle",
        }
        labels = {name for name, _ in adversarial_configurations(star_graph(5))}
        assert "pessimal-cycle" not in labels


class TestWorstCase:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_pessimal_cycle_is_essentially_tight(self, n):
        """The pessimal cycle forces exactly n rounds against the n+1
        bound — Theorem 1 is tight up to one round."""
        rounds, label = worst_case_rounds(cycle_graph(n))
        assert rounds == n
        assert label == "pessimal-cycle"

    def test_path_zipper_is_linear(self):
        rounds, _ = worst_case_rounds(path_graph(32))
        assert rounds >= 30

    def test_all_starts_stabilize_and_verify(self):
        for g in (cycle_graph(8), path_graph(9), complete_graph(7),
                  erdos_renyi_graph(12, 0.3, rng=4)):
            for label, cfg in adversarial_configurations(g):
                ex = run_synchronous(SMM, g, cfg, max_rounds=g.n + 2)
                verify_execution(g, ex)

    def test_worst_case_within_bound(self):
        for seed in range(4):
            g = erdos_renyi_graph(14, 0.3, rng=seed)
            rounds, _ = worst_case_rounds(g)
            assert rounds <= g.n + 1
