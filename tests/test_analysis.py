"""Tests for the analysis utilities (stats, tables, theory)."""

import math

import pytest

from repro.analysis.stats import (
    Summary,
    fraction_within,
    ratio_of_means,
    summarize,
)
from repro.analysis.tables import render_series, render_table
from repro.analysis.theory import (
    hsu_huang_move_bound,
    sis_round_bound,
    smm_matching_growth_bound,
    smm_round_bound,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.minimum == 1 and s.maximum == 5
        assert s.mean == 3 and s.median == 3

    def test_single_value(self):
        s = summarize([7])
        assert s.std == 0.0 and s.p95 == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_p95(self):
        s = summarize(range(101))
        assert s.p95 == 95

    def test_str_form(self):
        assert "med=" in str(summarize([1, 2, 3]))


class TestRatioOfMeans:
    def test_basic(self):
        assert ratio_of_means([4, 6], [1, 3]) == 2.5

    def test_zero_denominator(self):
        assert ratio_of_means([1], [0]) == math.inf
        assert ratio_of_means([0], [0]) == 1.0


class TestFractionWithin:
    def test_basic(self):
        assert fraction_within([1, 2, 3, 4], 2) == 0.5

    def test_all_within(self):
        assert fraction_within([1, 2], 10) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_within([], 1)


class TestRenderTable:
    def test_contains_cells_and_title(self):
        out = render_table(
            ["a", "b"],
            [{"a": 1, "b": 2.5}, {"a": 10, "b": None}],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.50" in out and "10" in out and "-" in out

    def test_bool_rendering(self):
        out = render_table(["ok"], [{"ok": True}, {"ok": False}])
        assert "yes" in out and "no" in out

    def test_missing_column_dash(self):
        out = render_table(["a", "b"], [{"a": 1}])
        assert "-" in out

    def test_nan_dash(self):
        out = render_table(["x"], [{"x": float("nan")}])
        assert "-" in out

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_float_digits(self):
        out = render_table(["x"], [{"x": 1.23456}], float_digits=4)
        assert "1.2346" in out


class TestRenderSeries:
    def test_bars_scale(self):
        out = render_series("n", "rounds", [(1, 1.0), (2, 2.0)], width=10)
        lines = out.splitlines()
        assert lines[-1].count("#") == 10
        assert lines[-2].count("#") == 5

    def test_title(self):
        out = render_series("n", "y", [(1, 1.0)], title="Figure")
        assert out.splitlines()[0] == "Figure"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series("x", "y", [])

    def test_zero_values_no_bar(self):
        out = render_series("x", "y", [(1, 0.0), (2, 4.0)])
        zero_line = out.splitlines()[-2]
        assert "#" not in zero_line


class TestTheoryBounds:
    def test_smm_bound(self):
        assert smm_round_bound(10) == 11

    def test_sis_bound(self):
        assert sis_round_bound(10) == 10

    def test_hsu_huang_bound(self):
        assert hsu_huang_move_bound(10) == 1000

    @pytest.mark.parametrize("fn", [smm_round_bound, sis_round_bound, hsu_huang_move_bound])
    def test_invalid_n(self, fn):
        with pytest.raises(ValueError):
            fn(0)

    def test_growth_bound(self):
        assert smm_matching_growth_bound(0) == 0
        assert smm_matching_growth_bound(1) == 0
        assert smm_matching_growth_bound(3) == 2
        assert smm_matching_growth_bound(5) == 4
