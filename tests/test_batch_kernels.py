"""Equivalence tests: batch kernels vs single-run kernels vs reference."""

import numpy as np
import pytest

from repro.core.executor import run_synchronous
from repro.core.faults import random_configuration
from repro.errors import StabilizationTimeout
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.smm_batch import BatchSMM
from repro.matching.smm_vectorized import VectorizedSMM
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.sis_batch import BatchSIS
from repro.mis.sis_vectorized import VectorizedSIS

SMM = SynchronousMaximalMatching()
SIS = SynchronousMaximalIndependentSet()


def random_configs(protocol, graph, k, seed):
    rng = np.random.default_rng(seed)
    return [random_configuration(protocol, graph, rng) for _ in range(k)]


class TestBatchSMM:
    def test_step_matches_single_kernel(self, rng):
        g = erdos_renyi_graph(20, 0.2, rng=3)
        batch = BatchSMM(g)
        single = VectorizedSMM(g)
        configs = random_configs(SMM, g, 8, seed=1)
        ptrs = batch.encode_batch(configs)
        for _ in range(5):
            stepped, _ = batch.step_batch(ptrs)
            for i in range(len(configs)):
                expected = single.step(ptrs[i])[0]
                assert np.array_equal(stepped[i], expected)
            ptrs = stepped

    def test_run_matches_reference_rounds_and_finals(self):
        g = erdos_renyi_graph(18, 0.2, rng=5)
        configs = random_configs(SMM, g, 10, seed=2)
        batch = BatchSMM(g)
        result = batch.run_batch(configs)
        assert result.all_stabilized
        for i, cfg in enumerate(configs):
            ref = run_synchronous(SMM, g, cfg)
            assert int(result.rounds[i]) == ref.rounds
            assert batch.single.decode(result.final_ptr[i]) == ref.final

    def test_mixed_batch_freezes_stable_rows(self):
        g = path_graph(8)
        stable = {0: 1, 1: 0, 2: 3, 3: 2, 4: 5, 5: 4, 6: 7, 7: 6}
        fresh = {i: None for i in range(8)}
        batch = BatchSMM(g)
        result = batch.run_batch([stable, fresh])
        assert result.all_stabilized
        assert int(result.rounds[0]) == 0
        assert int(result.rounds[1]) > 0
        assert batch.single.decode(result.final_ptr[0]) == stable

    def test_theorem_bound_over_large_batch(self):
        g = cycle_graph(32)
        configs = random_configs(SMM, g, 50, seed=3)
        result = BatchSMM(g).run_batch(configs)
        assert result.all_stabilized
        assert result.max_rounds() <= g.n + 1

    def test_timeout_raises(self):
        from repro.matching.adversarial import pessimal_cycle

        g = cycle_graph(16)
        with pytest.raises(StabilizationTimeout):
            BatchSMM(g).run_batch([pessimal_cycle(g)], max_rounds=2,
                                  raise_on_timeout=True)

    def test_accepts_matrix_input(self):
        g = path_graph(6)
        ptrs = np.full((3, 6), -1, dtype=np.int64)
        result = BatchSMM(g).run_batch(ptrs)
        assert result.all_stabilized


class TestBatchSIS:
    def test_step_matches_single_kernel(self):
        g = erdos_renyi_graph(20, 0.2, rng=3)
        batch = BatchSIS(g)
        single = VectorizedSIS(g)
        configs = random_configs(SIS, g, 8, seed=1)
        xs = batch.encode_batch(configs)
        for _ in range(5):
            stepped = batch.step_batch(xs)
            for i in range(len(configs)):
                assert np.array_equal(stepped[i], single.step(xs[i]))
            xs = stepped

    def test_run_matches_reference(self):
        g = erdos_renyi_graph(18, 0.2, rng=5)
        configs = random_configs(SIS, g, 10, seed=2)
        batch = BatchSIS(g)
        result = batch.run_batch(configs)
        assert result.all_stabilized
        for i, cfg in enumerate(configs):
            ref = run_synchronous(SIS, g, cfg)
            assert int(result.rounds[i]) == ref.rounds
            assert batch.single.decode(result.final_x[i]) == ref.final

    def test_all_rows_land_on_unique_fixpoint(self):
        g = cycle_graph(20)
        configs = random_configs(SIS, g, 30, seed=7)
        result = BatchSIS(g).run_batch(configs)
        assert result.all_stabilized
        finals = {result.final_x[i].tobytes() for i in range(30)}
        assert len(finals) == 1  # unique stable configuration

    def test_exhaustive_small_graph_batch(self):
        """All 256 configurations of C_8 as one batch."""
        from repro.experiments.common import exhaustive_configurations

        g = cycle_graph(8)
        configs = list(exhaustive_configurations(SIS, g))
        result = BatchSIS(g).run_batch(configs)
        assert result.all_stabilized
        assert result.max_rounds() <= g.n

    def test_timeout_flagged(self):
        g = path_graph(16)
        result = BatchSIS(g).run_batch([{i: 0 for i in g.nodes}], max_rounds=2)
        assert not result.all_stabilized
