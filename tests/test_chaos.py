"""The chaos harness, end to end against a real daemon.

One smoke run with small knobs drives a subprocess ``repro serve``
through three fault scripts (worker kill, store truncation, submit
flood) and checks the report contract the ``chaos-smoke`` CI job
relies on: every invariant held, the shutdown was graceful, no
``/dev/shm`` segments leaked, and the flood actually exercised
admission control (429s carried ``Retry-After``, the shed counter
moved, accepted jobs still completed).

The full five-fault script (plus SIGKILL mid-fulfill and sync
clock-skew) runs in CI via ``repro chaos``; here we keep the subset
that finishes quickly so the tier-1 suite stays fast.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import DEFAULT_FAULTS, ChaosHarness


class TestChaosHarness:
    def test_rejects_unknown_fault(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fault"):
            ChaosHarness(str(tmp_path / "state"), faults=("meteor",))

    def test_default_faults_cover_the_issue_scripts(self):
        assert set(DEFAULT_FAULTS) == {
            "worker_kill",
            "store_truncate",
            "flood",
            "sigkill",
            "sync_skew",
        }

    def test_smoke_run_holds_invariants(self, tmp_path):
        report_path = tmp_path / "chaos-report.json"
        harness = ChaosHarness(
            str(tmp_path / "state"),
            seed=3,
            faults=("worker_kill", "store_truncate", "flood"),
            trials=2,
            graph_n=60,
            flood_submits=8,
            max_queue_depth=2,
            max_workers=2,
            stall_seconds=2.0,
            report_path=str(report_path),
        )
        report = harness.run()
        assert report["ok"], json.dumps(report, indent=2)
        assert report["graceful_shutdown"] is True
        assert report["leaked_shm"] == []
        by_fault = {r["fault"]: r for r in report["faults"]}
        assert set(by_fault) == {"worker_kill", "store_truncate", "flood"}
        assert all(r["ok"] for r in report["faults"])
        # the flood actually tripped admission control
        assert by_fault["flood"]["rejected"] >= 1
        assert by_fault["flood"]["accepted"] >= 1
        # the corruption was detected, not silently served
        assert by_fault["store_truncate"]["recomputed"] >= 1
        # the supervisor really replaced killed workers
        assert by_fault["worker_kill"]["restarts"] >= 2
        # the report landed on disk for the CI artifact upload
        on_disk = json.loads(report_path.read_text())
        assert on_disk["ok"] is True
