"""Tests for the Fig. 2 node-type taxonomy and Fig. 3 transitions."""

import pytest
from hypothesis import given, settings

from repro.core.configuration import Configuration
from repro.core.executor import run_synchronous
from repro.errors import ProtocolError
from repro.graphs.generators import cycle_graph, path_graph
from repro.matching.classification import (
    ALLOWED_TRANSITIONS,
    TRANSIENT_TYPES,
    NodeType,
    classify,
    classify_node,
    matched_count,
    observed_transitions,
    transition_matrix,
    type_counts,
    validate_transitions,
)
from repro.matching.smm import SynchronousMaximalMatching

from conftest import graphs_with_pointers

SMM = SynchronousMaximalMatching()


class TestClassify:
    """One hand-built configuration exhibiting all six types.

    Path 0-1-2-3-4-5-6 with pointers:
      0 <-> 1 matched; 2 -> 1 (PM); 3 -> 2 (PP); 4 -> 5 where 5 null
      (PA); 5 null with suitor 4 (A1); 6 null, no suitor (A0).
    """

    def setup_method(self):
        self.g = path_graph(7)
        self.cfg = {0: 1, 1: 0, 2: 1, 3: 2, 4: 5, 5: None, 6: None}
        self.types = classify(self.g, self.cfg)

    def test_matched(self):
        assert self.types[0] is NodeType.M
        assert self.types[1] is NodeType.M

    def test_pm(self):
        assert self.types[2] is NodeType.PM

    def test_pp(self):
        assert self.types[3] is NodeType.PP

    def test_pa(self):
        assert self.types[4] is NodeType.PA

    def test_a1(self):
        assert self.types[5] is NodeType.A1

    def test_a0(self):
        assert self.types[6] is NodeType.A0

    def test_classify_node_agrees(self):
        for node in self.g.nodes:
            assert classify_node(self.g, self.cfg, node) is self.types[node]

    def test_type_counts(self):
        counts = type_counts(self.g, self.cfg)
        assert counts[NodeType.M] == 2
        assert sum(counts.values()) == 7

    def test_matched_count(self):
        assert matched_count(self.g, self.cfg) == 2

    def test_type_flags(self):
        assert NodeType.A0.is_aloof and NodeType.A1.is_aloof
        assert NodeType.PA.is_pointing and NodeType.PM.is_pointing
        assert not NodeType.M.is_aloof and not NodeType.M.is_pointing


class TestPartitions:
    @settings(max_examples=30, deadline=None)
    @given(graphs_with_pointers())
    def test_every_node_gets_exactly_one_type(self, graph_and_config):
        g, cfg = graph_and_config
        types = classify(g, cfg)
        assert set(types) == set(g.nodes)
        # definitional consistency
        for node, t in types.items():
            p = cfg[node]
            if t is NodeType.M:
                assert p is not None and cfg[p] == node
            elif t.is_aloof:
                assert p is None
            else:
                assert p is not None and cfg[p] != node


class TestAllowedTransitions:
    def test_figure3_arrow_count(self):
        assert len(ALLOWED_TRANSITIONS) == 10

    def test_transient_types(self):
        assert TRANSIENT_TYPES == {NodeType.A1, NodeType.PA}

    def test_no_arrows_into_transient_types(self):
        for _, dst in ALLOWED_TRANSITIONS:
            assert dst not in TRANSIENT_TYPES

    def test_m_only_goes_to_m(self):
        arrows_from_m = {
            dst for src, dst in ALLOWED_TRANSITIONS if src is NodeType.M
        }
        assert arrows_from_m == {NodeType.M}


class TestObservedTransitions:
    def test_counts_sum(self):
        g = cycle_graph(6)
        ex = run_synchronous(SMM, g, record_history=True)
        counts = observed_transitions(g, ex.history)
        assert sum(counts.values()) == ex.rounds * g.n

    def test_empty_history_rejected(self):
        with pytest.raises(ProtocolError):
            observed_transitions(cycle_graph(4), [])

    def test_single_config_no_transitions(self):
        g = cycle_graph(4)
        cfg = Configuration({i: None for i in g.nodes})
        assert observed_transitions(g, [cfg]) == {}


class TestValidateTransitions:
    @settings(max_examples=40, deadline=None)
    @given(graphs_with_pointers())
    def test_every_smm_history_validates(self, graph_and_config):
        g, cfg = graph_and_config
        ex = run_synchronous(SMM, g, cfg, record_history=True)
        validate_transitions(g, ex.history)

    def test_illegal_arrow_detected(self):
        """A hand-crafted history with M -> A0 (impossible under SMM)
        must be rejected."""
        g = path_graph(2)
        matched = Configuration({0: 1, 1: 0})
        broken = Configuration({0: None, 1: None})
        with pytest.raises(AssertionError, match="Fig. 3"):
            validate_transitions(g, [matched, broken])

    def test_lemma7_violation_detected(self):
        """A history keeping PA alive at t = 1 must be rejected."""
        g = path_graph(3)
        pa = Configuration({0: 1, 1: None, 2: None})  # 0 -> null 1: PA
        with pytest.raises(AssertionError):
            validate_transitions(g, [pa, pa])


class TestTransitionMatrix:
    def test_matrix_shape_and_totals(self):
        g = cycle_graph(8)
        ex = run_synchronous(SMM, g, record_history=True)
        counts = observed_transitions(g, ex.history)
        matrix = transition_matrix(counts)
        assert len(matrix) == len(NodeType)
        assert sum(sum(row) for row in matrix) == sum(counts.values())
