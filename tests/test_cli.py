"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import _registry, main


class TestRegistry:
    def test_fourteen_experiments(self):
        reg = _registry()
        assert set(reg) == {f"E{i}" for i in range(1, 15)}

    def test_every_entry_well_formed(self):
        for eid, (description, full, quick) in _registry().items():
            assert description
            assert callable(full) and callable(quick)


class TestList:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 15):
            assert f"E{i}" in out


class TestRun:
    def test_run_quick_e4(self, capsys):
        assert main(["run", "E4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "livelock" in out
        assert "arbitrary(clockwise)" in out

    def test_run_lowercase_id(self, capsys):
        assert main(["run", "e4", "--quick"]) == 0

    def test_run_multiple(self, capsys):
        assert main(["run", "E4", "E10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[E4]" in out and "[E10]" in out

    def test_unknown_id(self, capsys):
        assert main(["run", "E99", "--quick"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
