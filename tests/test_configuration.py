"""Tests for the immutable Configuration type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import Configuration


class TestMappingProtocol:
    def test_getitem(self):
        c = Configuration({0: None, 1: 5})
        assert c[1] == 5

    def test_missing_key(self):
        with pytest.raises(KeyError):
            Configuration({0: 1})[9]

    def test_len_iter_contains(self):
        c = Configuration({0: "a", 1: "b"})
        assert len(c) == 2
        assert set(c) == {0, 1}
        assert 0 in c and 7 not in c

    def test_independent_of_source_dict(self):
        src = {0: 1}
        c = Configuration(src)
        src[0] = 99
        assert c[0] == 1


class TestValueSemantics:
    def test_equality(self):
        assert Configuration({0: 1}) == Configuration({0: 1})
        assert Configuration({0: 1}) != Configuration({0: 2})

    def test_equality_with_plain_mapping(self):
        assert Configuration({0: 1}) == {0: 1}

    def test_hash_consistency(self):
        a, b = Configuration({0: 1, 1: None}), Configuration({1: None, 0: 1})
        assert hash(a) == hash(b) and a == b

    def test_usable_in_sets(self):
        seen = {Configuration({0: 1}), Configuration({0: 1})}
        assert len(seen) == 1


class TestUpdated:
    def test_applies_changes(self):
        c = Configuration({0: 1, 1: 2})
        c2 = c.updated({0: 9})
        assert c2[0] == 9 and c2[1] == 2
        assert c[0] == 1  # original untouched

    def test_empty_update_returns_self(self):
        c = Configuration({0: 1})
        assert c.updated({}) is c

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            Configuration({0: 1}).updated({5: 2})


class TestHelpers:
    def test_as_dict_mutable_copy(self):
        c = Configuration({0: 1})
        d = c.as_dict()
        d[0] = 9
        assert c[0] == 1

    def test_items_sorted(self):
        c = Configuration({2: "c", 0: "a", 1: "b"})
        assert c.items_sorted() == ((0, "a"), (1, "b"), (2, "c"))

    def test_where(self):
        c = Configuration({0: None, 1: 3, 2: None})
        assert c.where(lambda s: s is None) == {0, 2}

    def test_diff(self):
        a = Configuration({0: 1, 1: 2})
        b = Configuration({0: 1, 1: 9})
        assert a.diff(b) == {1}

    def test_diff_domain_mismatch(self):
        with pytest.raises(KeyError):
            Configuration({0: 1}).diff(Configuration({1: 1}))


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(st.integers(0, 20), st.integers(-5, 5), min_size=1))
    def test_roundtrip(self, data):
        assert Configuration(data).as_dict() == data

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(st.integers(0, 10), st.integers(-3, 3), min_size=2),
    )
    def test_updated_then_diff(self, data):
        c = Configuration(data)
        node = sorted(data)[0]
        c2 = c.updated({node: 99})
        assert c.diff(c2) == ({node} if data[node] != 99 else set())
