"""Tests for fault-containment analysis."""

import pytest

from repro.analysis.containment import (
    affected_by_distance,
    containment_radius,
    distances_from_set,
    edge_fault_sites,
)
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.graph import Graph


class TestDistancesFromSet:
    def test_single_source(self):
        g = path_graph(5)
        assert distances_from_set(g, [0]) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_multi_source_takes_minimum(self):
        g = path_graph(5)
        d = distances_from_set(g, [0, 4])
        assert d == {0: 0, 1: 1, 2: 2, 3: 1, 4: 0}

    def test_unreachable_absent(self):
        g = Graph([0, 1, 2], [(0, 1)])
        d = distances_from_set(g, [0])
        assert 2 not in d

    def test_unknown_source_rejected(self):
        with pytest.raises(KeyError):
            distances_from_set(path_graph(3), [9])


class TestContainmentRadius:
    def test_nothing_moved(self):
        g = cycle_graph(6)
        assert containment_radius(g, [0], []) is None

    def test_only_site_moved(self):
        g = cycle_graph(6)
        assert containment_radius(g, [0], [0]) == 0

    def test_two_hops(self):
        g = path_graph(6)
        assert containment_radius(g, [0], [0, 1, 2]) == 2

    def test_unreachable_moved_node_flagged(self):
        g = Graph([0, 1, 2], [(0, 1)])
        assert containment_radius(g, [0], [2]) == g.n

    def test_empty_fault_set_rejected(self):
        with pytest.raises(ValueError):
            containment_radius(cycle_graph(4), [], [0])


class TestAffectedByDistance:
    def test_histogram(self):
        g = path_graph(6)
        hist = affected_by_distance(g, [0], [0, 1, 1, 3])
        # note: duplicate moved entries are counted as given
        assert hist == {0: 1, 1: 2, 3: 1}


class TestEdgeFaultSites:
    def test_endpoints_collected(self):
        assert edge_fault_sites([(0, 1), (2, 3)]) == {0, 1, 2, 3}

    def test_empty(self):
        assert edge_fault_sites([]) == frozenset()


class TestEndToEndContainment:
    def test_smm_single_link_failure_is_contained(self):
        """Fail one matched edge on a long cycle; repair stays within
        a couple of hops of the failure."""
        from repro.core.executor import run_synchronous
        from repro.core.faults import migrate_configuration
        from repro.matching.smm import SynchronousMaximalMatching

        g = cycle_graph(30)
        smm = SynchronousMaximalMatching()
        ex = run_synchronous(smm, g)
        failed = (0, 1)
        g2 = g.with_edges(remove=[failed])
        migrated = migrate_configuration(smm, g, g2, ex.final)
        ex2 = run_synchronous(smm, g2, migrated)
        assert ex2.stabilized and ex2.legitimate
        radius = containment_radius(g2, failed, ex2.moved_nodes())
        assert radius is None or radius <= 4
