"""Tests for empirical growth-order estimation."""

import math

import numpy as np
import pytest

from repro.analysis.convergence import (
    PowerFit,
    classify_order,
    empirical_exponent,
    fit_power_law,
)


def series(fn, xs=(8, 16, 32, 64, 128, 256)):
    return [(x, fn(x)) for x in xs]


class TestFitPowerLaw:
    def test_exact_linear(self):
        fit = fit_power_law(series(lambda x: 3.0 * x))
        assert fit.alpha == pytest.approx(1.0, abs=1e-9)
        assert fit.c == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_quadratic(self):
        fit = fit_power_law(series(lambda x: 0.5 * x * x))
        assert fit.alpha == pytest.approx(2.0, abs=1e-9)

    def test_exact_sqrt(self):
        fit = fit_power_law(series(lambda x: math.sqrt(x)))
        assert fit.alpha == pytest.approx(0.5, abs=1e-9)

    def test_noisy_linear(self):
        rng = np.random.default_rng(1)
        pts = [(x, 2.0 * x * float(rng.uniform(0.9, 1.1))) for x in (8, 16, 32, 64, 128)]
        fit = fit_power_law(pts)
        assert 0.9 <= fit.alpha <= 1.1
        assert fit.r_squared > 0.97

    def test_predict(self):
        fit = PowerFit(alpha=1.0, c=2.0, r_squared=1.0)
        assert fit.predict(10) == pytest.approx(20.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([(1, 1), (2, 2)])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([(1, 0), (2, 2), (3, 3)])


class TestClassifyOrder:
    def test_constant(self):
        assert classify_order(series(lambda x: 5.0)) == "constant"

    def test_linear(self):
        assert classify_order(series(lambda x: 2.0 * x + 1)) == "linear"

    def test_superlinear(self):
        assert classify_order(series(lambda x: x ** 1.8)) == "superlinear"

    def test_logarithmic(self):
        assert classify_order(series(lambda x: 3.0 * math.log(x))) == "logarithmic"

    def test_sqrt_is_sublinear(self):
        assert classify_order(series(lambda x: x ** 0.5)) == "sublinear"


class TestEmpiricalExponent:
    def test_wraps_fit(self):
        fit = empirical_exponent([8, 16, 32], [8, 16, 32])
        assert fit.alpha == pytest.approx(1.0)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            empirical_exponent([1, 2], [1])

    def test_on_real_sis_series(self):
        """The E2 worst-case series really is linear."""
        from repro.experiments.e2_sis_convergence import run_worst_case_series

        r = run_worst_case_series(sizes=(8, 16, 32, 64))
        fit = empirical_exponent(
            [row["n"] for row in r.rows], [row["rounds"] for row in r.rows]
        )
        assert fit.alpha == pytest.approx(1.0, abs=0.05)
