"""Tests for central daemon strategies."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.daemons import (
    AdversarialStrategy,
    MinIdStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    make_strategy,
)
from repro.errors import ProtocolError
from repro.graphs.generators import path_graph


GRAPH = path_graph(6)
CONFIG = Configuration({i: 0 for i in range(6)})
RNG = np.random.default_rng(0)


class TestRandomStrategy:
    def test_choice_is_member(self):
        s = RandomStrategy()
        for _ in range(20):
            assert s.choose((1, 3, 5), CONFIG, GRAPH, 0, RNG) in (1, 3, 5)

    def test_covers_all_members(self):
        s = RandomStrategy()
        gen = np.random.default_rng(1)
        picks = {s.choose((1, 3, 5), CONFIG, GRAPH, 0, gen) for _ in range(100)}
        assert picks == {1, 3, 5}


class TestMinIdStrategy:
    def test_always_minimum(self):
        s = MinIdStrategy()
        assert s.choose((2, 4, 5), CONFIG, GRAPH, 0, RNG) == 2


class TestRoundRobinStrategy:
    def test_cycles_through(self):
        s = RoundRobinStrategy()
        enabled = (0, 2, 4)
        picks = [s.choose(enabled, CONFIG, GRAPH, i, RNG) for i in range(6)]
        assert picks == [0, 2, 4, 0, 2, 4]

    def test_skips_disabled(self):
        s = RoundRobinStrategy()
        assert s.choose((3,), CONFIG, GRAPH, 0, RNG) == 3
        assert s.choose((1, 5), CONFIG, GRAPH, 1, RNG) == 5

    def test_reset(self):
        s = RoundRobinStrategy()
        s.choose((4,), CONFIG, GRAPH, 0, RNG)
        s.reset()
        assert s.choose((0, 4), CONFIG, GRAPH, 0, RNG) == 0

    def test_no_enabled_raises(self):
        s = RoundRobinStrategy()
        with pytest.raises(ProtocolError):
            s.choose((), CONFIG, GRAPH, 0, RNG)


class TestAdversarialStrategy:
    def test_uses_chooser(self):
        s = AdversarialStrategy(lambda enabled, c, g, step: enabled[-1])
        assert s.choose((1, 2, 9), CONFIG, GRAPH, 0, RNG) == 9

    def test_rejects_unprivileged_choice(self):
        s = AdversarialStrategy(lambda enabled, c, g, step: 42)
        with pytest.raises(ProtocolError):
            s.choose((1, 2), CONFIG, GRAPH, 0, RNG)


class TestMakeStrategy:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("random", RandomStrategy),
            ("min-id", MinIdStrategy),
            ("round-robin", RoundRobinStrategy),
        ],
    )
    def test_by_name(self, name, cls):
        assert isinstance(make_strategy(name), cls)

    def test_passthrough(self):
        s = MinIdStrategy()
        assert make_strategy(s) is s

    def test_unknown_rejected(self):
        with pytest.raises(ProtocolError):
            make_strategy("chaos")
