"""Tests for :mod:`repro.observability.dash` — telemetry JSONL in,
terminal summary and self-contained HTML report out (``repro dash``).
"""

from __future__ import annotations

import json

import pytest

from repro.core.executor import run_synchronous
from repro.engine import run as engine_run
from repro.graphs.generators import cycle_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.observability import TelemetrySink
from repro.observability.dash import (
    load_telemetry,
    render_html,
    summarize,
    write_report,
)
from repro.resilience import FaultEvent, FaultPlan


def _telemetry_file(tmp_path, with_faults=False):
    path = tmp_path / "telemetry.jsonl"
    with TelemetrySink(path) as sink:
        for i, n in enumerate((6, 8, 10)):
            ex = run_synchronous(
                SynchronousMaximalMatching(), cycle_graph(n), telemetry=True
            )
            sink.write(
                {"family": "cycle", "n": n, "trial": i,
                 "telemetry": ex.telemetry.to_dict()}
            )
        if with_faults:
            plan = FaultPlan(
                events=(FaultEvent(kind="perturb", round=2, fraction=0.3),),
                seed=3,
            )
            ex = engine_run(
                "smm", cycle_graph(12), backend="reference", rng=1,
                fault_plan=plan,
            )
            sink.write(ex.telemetry.to_dict())  # raw RunTelemetry record
    return path


class TestLoad:
    def test_both_record_shapes(self, tmp_path):
        path = _telemetry_file(tmp_path, with_faults=True)
        records = load_telemetry(path)
        assert len(records) == 4
        labels = [label for label, _ in records]
        assert labels[0] == "family=cycle n=6 trial=0"
        assert labels[3] == "run 3"  # raw record gets an index label

    def test_corrupt_lines_skipped(self, tmp_path):
        path = _telemetry_file(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"telemetry": {"bogus": 1}}\n')
        assert len(load_telemetry(path)) == 3

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError):
            load_telemetry(path)

    def test_empty_file_diagnostic_names_the_cause(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="empty"):
            load_telemetry(path)

    def test_truncated_mid_line_keeps_complete_records(self, tmp_path):
        # a SIGKILLed writer tears the last line mid-record; every
        # complete record before it must still render
        path = _telemetry_file(tmp_path)
        with open(path, "r+", encoding="utf-8") as handle:
            content = handle.read()
            handle.seek(0)
            handle.write(content + content.splitlines()[0][: len(content) // 7])
            handle.truncate()
        assert len(load_telemetry(path)) == 3

    def test_only_truncated_line_diagnoses_truncation(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"telemetry": {"proto', encoding="utf-8")
        with pytest.raises(ValueError, match="truncated"):
            load_telemetry(path)


class TestSummarize:
    def test_mentions_totals_and_faults(self, tmp_path):
        records = load_telemetry(_telemetry_file(tmp_path, with_faults=True))
        text = summarize(records)
        assert "runs: 4" in text
        assert "moves by rule:" in text
        assert "faults[perturb]:" in text
        assert "final census" in text


class TestRenderHtml:
    def test_self_contained_report(self, tmp_path):
        records = load_telemetry(_telemetry_file(tmp_path, with_faults=True))
        html_text = render_html(records, title="t")
        assert html_text.startswith("<!DOCTYPE html>")
        # self-contained: no external fetches of any kind
        assert "http://" not in html_text and "https://" not in html_text
        assert 'src="' not in html_text
        # the four report sections
        assert "Node-type census per round" in html_text
        assert "Moves by rule per round" in html_text
        assert "Phase wall-clock" in html_text
        assert "Fault recovery" in html_text
        assert html_text.count("<svg") == 3
        # relief rule: charts ship their data as tables too
        assert html_text.count("<details>") == 2

    def test_no_fault_section_without_faults(self, tmp_path):
        records = load_telemetry(_telemetry_file(tmp_path))
        assert "Fault recovery" not in render_html(records)

    def test_chart_payload_is_valid_json(self, tmp_path):
        import html as html_mod
        import re

        records = load_telemetry(_telemetry_file(tmp_path))
        html_text = render_html(records)
        payloads = re.findall(r'data-series="([^"]+)"', html_text)
        assert payloads
        for payload in payloads:
            data = json.loads(html_mod.unescape(payload))
            assert list(data) == ["names", "series", "x"]
            assert len(data["names"]) == len(data["series"])


class TestWriteReport:
    def test_writes_file_and_returns_summary(self, tmp_path):
        source = _telemetry_file(tmp_path)
        out = tmp_path / "report.html"
        summary = write_report(source, out)
        assert "runs: 3" in summary
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")


class TestCLIDash:
    def test_end_to_end_from_e1_telemetry(self, tmp_path, capsys):
        from repro.cli import main

        telemetry = tmp_path / "t.jsonl"
        assert main(["run", "E1", "--quick", f"--telemetry={telemetry}"]) == 0
        out_path = tmp_path / "report.html"
        code = main(["dash", str(telemetry), "-o", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert f"wrote {out_path}" in out
        assert "runs:" in out
        text = out_path.read_text(encoding="utf-8")
        assert "Node-type census per round" in text

    def test_missing_file_is_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["dash", str(tmp_path / "missing.jsonl")])
        capsys.readouterr()
        assert code == 2

    def test_empty_file_gives_diagnostic_not_traceback(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        code = main(["dash", str(empty)])
        captured = capsys.readouterr()
        assert code == 2
        assert "empty" in captured.err
        assert "Traceback" not in captured.err

    def test_torn_file_gives_diagnostic_not_traceback(self, tmp_path, capsys):
        from repro.cli import main

        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"telemetry": {"pro', encoding="utf-8")
        code = main(["dash", str(torn)])
        captured = capsys.readouterr()
        assert code == 2
        assert "truncated" in captured.err
        assert "Traceback" not in captured.err
