"""Edge cases and boundary conditions across the stack.

Degenerate networks (single node, single edge, disconnected pieces),
extreme parameters, and protocol corner states — the inputs a
downstream user will eventually feed the library.
"""

import pytest

from repro.core.configuration import Configuration
from repro.core.executor import enabled_nodes, run_central, run_synchronous
from repro.graphs.generators import path_graph
from repro.graphs.graph import Graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.smm_vectorized import VectorizedSMM
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.sis_vectorized import VectorizedSIS
from repro.spanning.bfs_tree import BfsSpanningTree

SMM = SynchronousMaximalMatching()
SIS = SynchronousMaximalIndependentSet()


class TestSingleNode:
    GRAPH = Graph([0], [])

    def test_smm_stable_immediately(self):
        ex = run_synchronous(SMM, self.GRAPH)
        assert ex.stabilized and ex.rounds == 0
        assert ex.legitimate  # empty matching is maximal on K_1

    def test_sis_enters_in_one_round(self):
        ex = run_synchronous(SIS, self.GRAPH)
        assert ex.stabilized and ex.rounds == 1
        assert ex.final[0] == 1  # the MIS of K_1 is {0}

    def test_bfs_tree_root_only(self):
        p = BfsSpanningTree(0)
        ex = run_synchronous(p, self.GRAPH)
        assert ex.stabilized and ex.legitimate

    def test_vectorized_kernels(self):
        assert VectorizedSMM(self.GRAPH).run().stabilized
        res = VectorizedSIS(self.GRAPH).run()
        assert res.stabilized and res.final_x[0] == 1


class TestSingleEdge:
    GRAPH = path_graph(2)

    def test_smm_matches_the_edge(self):
        ex = run_synchronous(SMM, self.GRAPH)
        assert ex.stabilized
        assert ex.final == {0: 1, 1: 0}

    def test_sis_keeps_the_larger(self):
        ex = run_synchronous(SIS, self.GRAPH)
        assert ex.stabilized
        assert ex.final == {0: 0, 1: 1}

    def test_smm_exhaustive_all_nine_configs(self):
        from repro.experiments.common import exhaustive_configurations
        from repro.matching.verify import verify_execution

        for cfg in exhaustive_configurations(SMM, self.GRAPH):
            ex = run_synchronous(SMM, self.GRAPH, cfg)
            verify_execution(self.GRAPH, ex)
            assert ex.rounds <= 3


class TestDisconnectedGraphs:
    """The paper assumes connectivity, but the *protocols* are purely
    local — they behave per-component, and the library should too."""

    GRAPH = Graph([0, 1, 2, 3, 4], [(0, 1), (2, 3)])  # 2 edges + isolate

    def test_smm_matches_each_component(self):
        ex = run_synchronous(SMM, self.GRAPH)
        assert ex.stabilized and ex.legitimate
        assert ex.final[0] == 1 and ex.final[2] == 3
        assert ex.final[4] is None

    def test_sis_covers_each_component(self):
        ex = run_synchronous(SIS, self.GRAPH)
        assert ex.stabilized and ex.legitimate
        in_set = {n for n, x in ex.final.items() if x == 1}
        assert in_set == {1, 3, 4}

    def test_isolated_node_in_mis(self):
        g = Graph([7], [])
        ex = run_synchronous(SIS, g)
        assert ex.final[7] == 1


class TestEmptyGraph:
    GRAPH = Graph([], [])

    def test_smm_trivially_stable(self):
        ex = run_synchronous(SMM, self.GRAPH)
        assert ex.stabilized and ex.rounds == 0 and ex.legitimate

    def test_enabled_nodes_empty(self):
        assert enabled_nodes(SIS, self.GRAPH, Configuration({})) == ()


class TestExtremeParameters:
    def test_zero_round_budget(self):
        g = path_graph(4)
        ex = run_synchronous(SIS, g, max_rounds=0)
        # all-zero start is not stable, budget 0: not stabilized
        assert not ex.stabilized and ex.rounds == 0

    def test_zero_budget_on_stable_config(self):
        g = path_graph(4)
        stable = {0: 0, 1: 1, 2: 0, 3: 1}
        ex = run_synchronous(SIS, g, stable, max_rounds=0)
        assert ex.stabilized  # the post-loop privilege check catches it

    def test_central_zero_budget(self):
        g = path_graph(4)
        ex = run_central(SIS, g, max_moves=0)
        assert not ex.stabilized and ex.moves == 0

    def test_huge_ids(self):
        big = 10**12
        g = Graph([big, big + 1, big + 2], [(big, big + 1), (big + 1, big + 2)])
        ex = run_synchronous(SIS, g)
        assert ex.stabilized
        in_set = {n for n, x in ex.final.items() if x == 1}
        assert big + 2 in in_set

    def test_negative_ids(self):
        g = Graph([-3, -2, -1], [(-3, -2), (-2, -1)])
        ex = run_synchronous(SIS, g)
        assert ex.stabilized and ex.legitimate
        assert ex.final[-1] == 1  # -1 is the largest id


class TestRelabelingInvariance:
    """The theorems quantify over id assignments; shifting all ids by a
    constant (an order-preserving relabeling) must not change runs."""

    def test_smm_shift_invariant(self):
        g = path_graph(6)
        shifted = g.relabeled({i: i + 100 for i in g.nodes})
        ex1 = run_synchronous(SMM, g)
        ex2 = run_synchronous(SMM, shifted)
        assert ex1.rounds == ex2.rounds
        assert {(u + 100, v + 100) for u, v in
                [(n, p) for n, p in ex1.final.items() if p is not None]} == {
            (n, p) for n, p in ex2.final.items() if p is not None
        }

    def test_sis_shift_invariant(self):
        g = path_graph(7)
        shifted = g.relabeled({i: i + 50 for i in g.nodes})
        ex1 = run_synchronous(SIS, g)
        ex2 = run_synchronous(SIS, shifted)
        assert ex1.rounds == ex2.rounds
        set1 = {n + 50 for n, x in ex1.final.items() if x == 1}
        set2 = {n for n, x in ex2.final.items() if x == 1}
        assert set1 == set2
