"""The engine layer: registries, backend selection, the unified result.

Pins the contracts of :mod:`repro.engine`:

* the protocol registry knows the paper protocols and their variants,
  and registering a protocol auto-registers the reference backend;
* ``backend="auto"`` picks the vectorized kernel for plain SMM/SIS runs
  and the reference engine whenever monitors, history recording or
  injected choosers are in play;
* an explicit backend that cannot honour a run raises instead of
  silently degrading, while :func:`repro.engine.fallback_backend`
  degrades explicitly for heterogeneous batches;
* :class:`RunResult` is one type for every backend, with ``Execution``
  as its compatibility alias.
"""

from __future__ import annotations

import pytest

from repro.core.executor import Execution, run_synchronous
from repro.engine import (
    BACKENDS,
    DAEMONS,
    PROTOCOLS,
    RunResult,
    backend_names,
    backends_for,
    fallback_backend,
    make_protocol,
    protocol_key,
    run,
    select_backend,
)
from repro.errors import ExperimentError
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.matching.smm import SynchronousMaximalMatching, max_id_chooser
from repro.matching.variants import ArbitraryChoiceSMM
from repro.parallel import TrialSpec, execute_trial


class TestProtocolRegistry:
    def test_paper_protocols_and_variants_registered(self):
        expected = {
            "smm",
            "sis",
            "hsu-huang",
            "luby",
            "mis-central",
            "smm-randomized",
            "smm-arbitrary-clockwise",
            "smm-max-accept",
        }
        assert expected <= set(PROTOCOLS)

    def test_factories_build_fresh_instances(self):
        a, b = make_protocol("smm"), make_protocol("smm")
        assert type(a) is type(b) and a is not b

    def test_unknown_protocol_raises(self):
        with pytest.raises(ExperimentError, match="unknown protocol"):
            make_protocol("no-such-protocol")

    def test_every_protocol_has_reference_backend_under_every_daemon(self):
        for name in PROTOCOLS:
            for daemon in DAEMONS:
                assert (name, daemon, "reference") in BACKENDS

    def test_protocol_key_resolves_instances(self):
        assert protocol_key(SynchronousMaximalMatching()) == "smm"
        assert (
            protocol_key(make_protocol("smm-arbitrary-clockwise"))
            == "smm-arbitrary-clockwise"
        )

    def test_variant_factories_run_via_engine(self):
        graph = cycle_graph(6)
        for key in ("smm-max-accept", "mis-central"):
            daemon = "central" if key == "mis-central" else "synchronous"
            result = run(key, graph, daemon=daemon, rng=1)
            assert result.stabilized and result.legitimate


class TestBackendRegistry:
    def test_kernels_registered_with_priority_order(self):
        assert backend_names("smm", "synchronous") == [
            "vectorized",
            "batch",
            "reference",
        ]
        assert backend_names("sis", "synchronous") == [
            "vectorized",
            "batch",
            "reference",
        ]
        assert backend_names("luby", "synchronous") == ["vectorized", "reference"]

    def test_reference_capabilities_cover_everything(self):
        ref = backends_for("smm", "synchronous")[-1]
        assert ref.name == "reference"
        assert {"move_log", "history", "monitors"} <= ref.capabilities


class TestAutoSelection:
    def test_auto_picks_vectorized_for_plain_smm_and_sis(self):
        graph = cycle_graph(8)
        for key in ("smm", "sis"):
            chosen = select_backend(make_protocol(key), graph)
            assert chosen.name == "vectorized"
            assert run(key, graph, backend="auto").backend == "vectorized"

    def test_auto_degrades_for_record_history(self):
        graph = cycle_graph(8)
        result = run("smm", graph, backend="auto", record_history=True)
        assert result.backend == "reference"
        assert result.history is not None

    def test_auto_degrades_for_monitors(self):
        from repro.core.invariants import HistoryMonitor

        graph = cycle_graph(8)
        probe = HistoryMonitor()
        result = run("smm", graph, backend="auto", monitors=(probe,))
        assert result.backend == "reference"
        assert len(probe.configurations) == result.rounds + 1

    def test_auto_degrades_for_injected_choosers(self):
        graph = cycle_graph(8)
        tweaked = SynchronousMaximalMatching(accept_chooser=max_id_chooser)
        assert select_backend(tweaked, graph).name == "reference"
        adversary = ArbitraryChoiceSMM(max_id_chooser)
        assert select_backend(adversary, graph).name == "reference"

    def test_empty_options_do_not_disqualify_kernels(self):
        graph = cycle_graph(8)
        chosen = select_backend(
            make_protocol("smm"), graph, monitors=(), record_history=False
        )
        assert chosen.name == "vectorized"


class TestExplicitBackend:
    def test_unknown_backend_raises(self):
        with pytest.raises(ExperimentError, match="unknown backend"):
            run("smm", cycle_graph(4), backend="no-such-kernel")

    def test_unsupported_explicit_backend_raises(self):
        with pytest.raises(ExperimentError, match="does not support"):
            run("smm", cycle_graph(4), backend="vectorized", record_history=True)

    def test_unknown_daemon_raises(self):
        with pytest.raises(ExperimentError, match="unknown daemon"):
            run("smm", cycle_graph(4), daemon="chaotic")

    def test_result_backend_names_producer(self):
        graph = cycle_graph(6)
        assert run("smm", graph, backend="reference").backend == "reference"
        assert run("smm", graph, backend="batch").backend == "batch"


class TestFallbackBackend:
    def test_passthrough_and_degrade(self):
        assert fallback_backend("smm", backend="auto") == "auto"
        assert fallback_backend("smm", backend="reference") == "reference"
        assert fallback_backend("smm", backend="vectorized") == "vectorized"
        # capability gap: kernels record no history
        assert (
            fallback_backend("smm", backend="vectorized", record_history=True)
            == "reference"
        )
        # registration gap: no kernel for this (protocol, daemon)
        assert (
            fallback_backend("hsu-huang", "central", backend="vectorized")
            == "reference"
        )

    def test_monitors_degrade(self):
        from repro.core.invariants import HistoryMonitor

        # regression: only record_history used to be checked here, so a
        # batch planned with monitors kept the kernel name and raised at
        # run time; monitors must degrade like any capability gap
        assert (
            fallback_backend(
                "smm", backend="vectorized", monitors=(HistoryMonitor(),)
            )
            == "reference"
        )
        assert (
            fallback_backend("smm", backend="vectorized", monitors=())
            == "vectorized"
        )

    def test_telemetry_stays_on_kernel(self):
        # every built-in backend advertises the telemetry capability,
        # so requesting it alone never pushes a run off the fast path
        assert (
            fallback_backend("smm", backend="vectorized", telemetry=True)
            == "vectorized"
        )
        assert fallback_backend("sis", backend="batch", telemetry=True) == "batch"
        assert (
            fallback_backend(
                "smm", backend="vectorized", telemetry=True, record_history=True
            )
            == "reference"
        )

    def test_unknown_truthy_option_degrades(self):
        # options with no capability mapping require a capability of
        # their own name, which no kernel advertises
        assert (
            fallback_backend("smm", backend="vectorized", accept_chooser=max)
            == "reference"
        )
        # falsy options never disqualify
        assert (
            fallback_backend("smm", backend="vectorized", accept_chooser=None)
            == "vectorized"
        )


class TestRunResult:
    def test_execution_is_runresult_alias(self):
        assert issubclass(Execution, RunResult)
        execution = run_synchronous(make_protocol("smm"), cycle_graph(6))
        assert isinstance(execution, RunResult)
        assert execution.backend == "reference"
        assert execution.move_log is not None

    def test_legitimate_uniform_across_backends(self):
        graph = erdos_renyi_graph(10, 0.4, rng=3)
        verdicts = {
            b: run("sis", graph, backend=b).legitimate
            for b in backend_names("sis", "synchronous")
        }
        assert set(verdicts.values()) == {True}

    def test_moved_nodes_requires_move_log(self):
        graph = cycle_graph(6)
        reference = run("smm", graph, backend="reference")
        assert reference.moved_nodes()  # clean start on C_6 moves nodes
        kernel = run("smm", graph, backend="vectorized")
        assert kernel.move_log is None
        with pytest.raises(ExperimentError, match="backend"):
            kernel.moved_nodes()


class TestTrialSpecBackend:
    def test_spec_backend_flows_through_engine(self):
        graph = cycle_graph(8)
        by_backend = {
            b: execute_trial(TrialSpec("smm", graph, backend=b))
            for b in ("reference", "vectorized", "batch", "auto")
        }
        assert by_backend["vectorized"].backend == "vectorized"
        assert by_backend["auto"].backend == "vectorized"
        reference = by_backend["reference"]
        for result in by_backend.values():
            assert result.final == reference.final
            assert result.rounds == reference.rounds
            assert result.moves_by_rule == reference.moves_by_rule
