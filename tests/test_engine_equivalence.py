"""Cross-backend equivalence: every registered backend is byte-identical
to the reference engine.

The acceptance bar of the unified engine layer: for every registered
non-reference backend, ``repro.engine.run(protocol, graph, backend=b)``
must reproduce the reference engine's final configuration, round count,
per-rule move counts and legitimacy verdict exactly — over several
graph families, several seeds, and the degenerate graphs (empty, single
node, disconnected).  The backend list is read from the registry, so a
newly registered kernel is swept automatically.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.faults import random_configuration
from repro.engine import backends_for, fallback_backend, make_protocol, run
from repro.errors import ExperimentError, InvalidConfigurationError
from repro.resilience import FaultEvent, FaultPlan
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    random_tree,
)
from repro.graphs.graph import Graph
from repro.rng import ensure_rng

#: every (protocol, kernel backend) pair in the registry
KERNEL_CASES = [
    (key, backend.name)
    for key in ("smm", "sis", "luby")
    for backend in backends_for(key, "synchronous")
    if backend.name != "reference"
]

FAMILIES = ("cycle", "tree", "grid", "er")
SEEDS = (0, 1, 2)


def make_graph(family: str, seed: int) -> Graph:
    rng = ensure_rng(1000 + seed)
    if family == "cycle":
        return cycle_graph(12)
    if family == "tree":
        return random_tree(12, rng)
    if family == "grid":
        return grid_graph(3, 4)
    return erdos_renyi_graph(12, 0.35, rng)


def assert_equivalent(reference, result):
    assert result.stabilized == reference.stabilized
    assert result.rounds == reference.rounds
    assert result.final == reference.final
    assert result.moves == reference.moves
    assert result.moves_by_rule == reference.moves_by_rule
    assert result.legitimate == reference.legitimate


class TestKernelEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("key,backend", KERNEL_CASES)
    def test_backend_matches_reference(self, key, backend, family, seed):
        graph = make_graph(family, seed)
        protocol = make_protocol(key)
        config = random_configuration(protocol, graph, ensure_rng(seed))
        reference = run(key, graph, config, backend="reference", rng=seed)
        result = run(key, graph, config, backend=backend, rng=seed)
        assert result.backend == backend
        assert_equivalent(reference, result)

    @pytest.mark.parametrize("key,backend", KERNEL_CASES)
    def test_clean_start_matches_reference(self, key, backend):
        graph = cycle_graph(9)
        reference = run(key, graph, backend="reference", rng=7)
        result = run(key, graph, backend=backend, rng=7)
        assert_equivalent(reference, result)

    @pytest.mark.parametrize("key,backend", KERNEL_CASES)
    def test_timeout_accounting_matches_reference(self, key, backend):
        # a budget of 1 round times out on graphs that need more; both
        # engines must report the same rounds/stabilized/final
        graph = erdos_renyi_graph(14, 0.3, rng=9)
        protocol = make_protocol(key)
        config = random_configuration(protocol, graph, ensure_rng(5))
        reference = run(
            key, graph, config, backend="reference", rng=5, max_rounds=1
        )
        result = run(key, graph, config, backend=backend, rng=5, max_rounds=1)
        assert_equivalent(reference, result)


class TestTelemetryEquivalence:
    """Telemetry *counters* are byte-identical across backends.

    The diagnostic fields (``active_set_sizes``, ``timings``) describe
    the producing backend and are deliberately excluded.
    """

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("key,backend", KERNEL_CASES)
    def test_telemetry_counters_match_reference(self, key, backend, family, seed):
        graph = make_graph(family, seed)
        protocol = make_protocol(key)
        config = random_configuration(protocol, graph, ensure_rng(seed))
        reference = run(
            key, graph, config, backend="reference", rng=seed, telemetry=True
        )
        result = run(
            key, graph, config, backend=backend, rng=seed, telemetry=True
        )
        ref_t, res_t = reference.telemetry, result.telemetry
        assert ref_t is not None and res_t is not None
        assert res_t.backend == backend
        assert res_t.rounds == ref_t.rounds == result.rounds
        assert res_t.moves == ref_t.moves
        assert res_t.moves_by_rule == ref_t.moves_by_rule
        assert res_t.per_round_moves == ref_t.per_round_moves
        assert res_t.node_type_census == ref_t.node_type_census
        assert_equivalent(reference, result)

    @pytest.mark.parametrize("key", ("smm", "sis"))
    def test_auto_with_telemetry_selects_vectorized(self, key):
        # telemetry is a capability every kernel implements, so asking
        # for it must not push a plain run off the fast path
        graph = cycle_graph(10)
        result = run(key, graph, backend="auto", telemetry=True)
        assert result.backend == "vectorized"
        assert result.telemetry is not None
        assert result.telemetry.backend == "vectorized"


class TestMetricsEquivalence:
    """Metric exports are byte-identical across backends and ``--jobs``.

    The protocol-accounting families (``repro_rounds_total``,
    ``repro_moves_total`` and the fault counters) deliberately carry no
    backend label, so a sweep metered on any backend at any parallelism
    must export the exact same bytes for them.  The jobs half of the
    pin lives in ``test_metrics.py``; this is the backend half.
    """

    def _sweep_exposition(self, backend, jobs=1):
        from repro.observability import MetricsRegistry, use_registry
        from repro.parallel.trial_runner import TrialSpec, run_trials

        specs = [
            TrialSpec(key, make_graph(family, seed), seed=seed, backend=backend)
            for key in ("smm", "sis")
            for family in FAMILIES
            for seed in SEEDS
        ]
        registry = MetricsRegistry()
        with use_registry(registry):
            run_trials(specs, jobs=jobs)
        return registry.exposition(kinds=("counter",)), registry.to_json(
            kinds=("counter",)
        )

    def test_counter_exports_identical_across_backends_and_jobs(self):
        ref_prom, ref_json = self._sweep_exposition("reference")
        for backend, jobs in (("vectorized", 1), ("vectorized", 4)):
            prom, jsn = self._sweep_exposition(backend, jobs=jobs)
            # backend-labelled families (repro_runs_total) do differ, so
            # compare everything except them, family block by block
            ref_blocks = self._strip_backend_families(ref_prom)
            blocks = self._strip_backend_families(prom)
            assert blocks == ref_blocks
            ref_data = {
                k: v
                for k, v in json.loads(ref_json).items()
                if not self._backend_labelled(v)
            }
            data = {
                k: v
                for k, v in json.loads(jsn).items()
                if not self._backend_labelled(v)
            }
            assert data == ref_data
            assert "repro_rounds_total" in data
            assert "repro_moves_total" in data

    @staticmethod
    def _backend_labelled(family):
        return any("backend" in s.get("labels", {}) for s in family["samples"])

    @staticmethod
    def _strip_backend_families(exposition):
        blocks: dict = {}
        name = None
        for line in exposition.splitlines():
            if line.startswith("# TYPE "):
                name = line.split(" ")[2]
            elif line.startswith("# HELP "):
                name = line.split(" ")[2]
            blocks.setdefault(name, []).append(line)
        return {
            family: "\n".join(lines)
            for family, lines in blocks.items()
            if 'backend="' not in "\n".join(lines)
        }


class TestDegenerateGraphs:
    @pytest.mark.parametrize("key,backend", KERNEL_CASES)
    def test_empty_graph(self, key, backend):
        graph = Graph([], [])
        reference = run(key, graph, backend="reference", rng=0)
        result = run(key, graph, backend=backend, rng=0)
        assert_equivalent(reference, result)
        assert result.stabilized and result.rounds == 0

    @pytest.mark.parametrize("key,backend", KERNEL_CASES)
    def test_single_node(self, key, backend):
        graph = Graph([3], [])
        reference = run(key, graph, backend="reference", rng=0)
        result = run(key, graph, backend=backend, rng=0)
        assert_equivalent(reference, result)

    @pytest.mark.parametrize("key,backend", KERNEL_CASES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_disconnected_components(self, key, backend, seed):
        # two triangles, an edge, and an isolated node
        graph = Graph(
            range(9),
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (6, 7)],
        )
        protocol = make_protocol(key)
        config = random_configuration(protocol, graph, ensure_rng(seed))
        reference = run(key, graph, config, backend="reference", rng=seed)
        result = run(key, graph, config, backend=backend, rng=seed)
        assert_equivalent(reference, result)


class TestFaultCampaignEquivalence:
    """Same FaultPlan + seed → byte-identical campaigns on every backend.

    The plan's per-event RNG is seeded from ``(plan.seed, event index)``
    independently of the daemon stream, so victim choices, redraws and
    random churn must agree exactly between the reference driver and the
    vectorized kernels — counters, final configuration AND the recorded
    recovery metrics.
    """

    #: a campaign touching every event kind, timed for 12-node graphs
    def make_plan(self, seed: int) -> FaultPlan:
        return FaultPlan(
            events=(
                FaultEvent(round=4, kind="perturb", fraction=0.3),
                FaultEvent(round=9, kind="churn", churn=2),
                FaultEvent(round=14, kind="crash", count=2),
                FaultEvent(round=19, kind="message_loss", count=1),
                FaultEvent(round=24, kind="rejoin"),
                FaultEvent(round=24, kind="message_dup", count=3),
            ),
            seed=seed,
        )

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("key", ("smm", "sis"))
    def test_campaign_matches_reference(self, key, family, seed):
        graph = make_graph(family, seed)
        protocol = make_protocol(key)
        config = random_configuration(protocol, graph, ensure_rng(seed))
        plan = self.make_plan(seed)
        reference = run(
            key, graph, config, backend="reference", rng=seed, fault_plan=plan
        )
        result = run(
            key, graph, config, backend="vectorized", rng=seed, fault_plan=plan
        )
        assert result.backend == "vectorized"
        assert_equivalent(reference, result)
        ref_t, res_t = reference.telemetry, result.telemetry
        assert ref_t is not None and res_t is not None
        assert res_t.per_round_moves == ref_t.per_round_moves
        assert res_t.node_type_census == ref_t.node_type_census
        # the recovery records must agree field-for-field, radius included
        assert res_t.fault_events == ref_t.fault_events
        assert len(res_t.fault_events) == len(plan.events)

    @pytest.mark.parametrize("key", ("smm", "sis"))
    def test_auto_with_fault_plan_stays_vectorized(self, key):
        # "faults" is a capability of the vectorized kernels, so a
        # campaign must not push a plain run off the fast path
        graph = cycle_graph(10)
        plan = FaultPlan(events=(FaultEvent(round=3, kind="perturb"),))
        result = run(key, graph, backend="auto", rng=0, fault_plan=plan)
        assert result.backend == "vectorized"
        assert result.telemetry.fault_events is not None

    def test_fault_plan_degrades_unsupporting_backend(self):
        # the batch kernel does not implement fault campaigns: the
        # static helper degrades it, the explicit request raises
        plan = FaultPlan(events=(FaultEvent(round=3, kind="perturb"),))
        assert fallback_backend("smm", backend="batch", fault_plan=plan) == (
            "reference"
        )
        with pytest.raises(ExperimentError):
            run("smm", cycle_graph(8), backend="batch", rng=0, fault_plan=plan)

    def test_empty_plan_matches_plain_run(self):
        # an event-free campaign is still a campaign (telemetry, the
        # campaign driver), but its counters equal the plain run's
        graph = cycle_graph(12)
        protocol = make_protocol("smm")
        config = random_configuration(protocol, graph, ensure_rng(3))
        plain = run("smm", graph, config, backend="reference", rng=3)
        campaign = run(
            "smm", graph, config, backend="reference", rng=3,
            fault_plan=FaultPlan(),
        )
        assert_equivalent(plain, campaign)
        assert campaign.telemetry.fault_events == []


class TestInvalidConfigurations:
    @pytest.mark.parametrize(
        "backend", [b.name for b in backends_for("smm", "synchronous")]
    )
    def test_invalid_pointer_rejected_by_every_backend(self, backend):
        # a pointer to a non-neighbour is outside SMM's state space;
        # every backend funnels through the same validation, so the
        # error is identical rather than backend-dependent garbage
        graph = cycle_graph(6)
        bad = {node: None for node in graph.nodes}
        bad[0] = 3  # not adjacent on C_6
        with pytest.raises(InvalidConfigurationError):
            run("smm", graph, bad, backend=backend)

    @pytest.mark.parametrize(
        "backend", [b.name for b in backends_for("sis", "synchronous")]
    )
    def test_invalid_bit_rejected_by_every_backend(self, backend):
        graph = cycle_graph(6)
        bad = {node: 0 for node in graph.nodes}
        bad[0] = 7  # not a 0/1 state
        with pytest.raises(InvalidConfigurationError):
            run("sis", graph, bad, backend=backend)


class TestPackedStateLayout:
    """The packed layouts (int32 pointers, uint8/bitset membership) are
    an internal representation change only: encode/decode round-trips,
    dtype selection at the int32 boundary, and the packed-bit SIS
    stepping path must all agree byte-for-byte with the flat kernel."""

    def test_state_dtype_boundary(self):
        import numpy as np

        from repro.kernels import state_dtype

        # the NULL sentinel is stored as -1 but the *encoded* proposal
        # sentinel is n itself, so n must fit the signed dtype with one
        # value to spare
        assert state_dtype(0) == np.dtype(np.int32)
        assert state_dtype(2**31 - 2) == np.dtype(np.int32)
        assert state_dtype(2**31 - 1) == np.dtype(np.int64)
        assert state_dtype(2**40) == np.dtype(np.int64)

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_int32_null_round_trips(self, family, seed):
        import numpy as np

        from repro.kernels import SMM_NULL
        from repro.matching.smm_vectorized import VectorizedSMM

        graph = make_graph(family, seed)
        kernel = VectorizedSMM(graph)
        protocol = make_protocol("smm")
        config = random_configuration(protocol, graph, ensure_rng(seed))
        ptr = kernel.encode(config)
        assert ptr.dtype == np.dtype(np.int32)
        nulls = sum(1 for v in config.values() if v is None)
        assert int((ptr == SMM_NULL).sum()) == nulls
        assert dict(kernel.decode(ptr)) == dict(config)

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_packed_bit_sis_matches_flat(self, family, seed):
        import numpy as np

        from repro.mis.sis_vectorized import VectorizedSIS

        graph = make_graph(family, seed)
        kernel = VectorizedSIS(graph)
        protocol = make_protocol("sis")
        config = random_configuration(protocol, graph, ensure_rng(seed))
        x = kernel.encode(config)
        assert x.dtype == np.dtype(np.uint8)
        bits = kernel.pack(x)
        assert bits.dtype == np.dtype(np.uint8)
        assert bits.nbytes <= x.nbytes // 8 + 1
        assert np.array_equal(kernel.unpack(bits), x)
        # step the packed and flat representations side by side to a
        # fixpoint: byte-identical trajectories
        for _ in range(graph.n + 8):
            nxt = kernel.step(x)
            bits = kernel.step_packed(bits)
            assert np.array_equal(kernel.unpack(bits), nxt)
            if np.array_equal(nxt, x):
                break
            x = nxt
        assert dict(kernel.decode(kernel.unpack(bits))) == dict(kernel.decode(x))


class TestBatchSweepDispatch:
    """Batch-sweep dispatch returns results bit-identical to per-trial
    execution (modulo the honest ``backend="batch"`` label), for any
    ``jobs``, and its metric exports keep the determinism pin."""

    def _specs(self, backend, protocols=("smm", "sis")):
        from repro.parallel import TrialSpec

        return [
            TrialSpec(
                key,
                make_graph(family, 0),
                random_configuration(
                    make_protocol(key), make_graph(family, 0), ensure_rng(seed)
                ),
                backend=backend,
            )
            for key in protocols
            for family in FAMILIES
            for seed in SEEDS
        ]

    def test_auto_specs_dispatch_through_batch_kernel(self):
        from repro.parallel import run_trials, sweep_eligible

        specs = self._specs("auto")
        assert all(sweep_eligible(spec) for spec in specs)
        reference = run_trials(self._specs("reference"), jobs=1)
        for jobs in (1, 2):
            results = run_trials(specs, jobs=jobs)
            for ref, res in zip(reference, results):
                assert res.backend == "batch"
                assert_equivalent(ref, res)

    def test_disabled_batching_matches_and_selects_vectorized(self):
        from repro.parallel import run_trials

        specs = self._specs("auto")
        batched = run_trials(specs, jobs=1)
        unbatched = run_trials(specs, jobs=1, batch_sweep=False)
        for a, b in zip(batched, unbatched):
            assert b.backend == "vectorized"  # auto's per-trial pick
            assert_equivalent(a, b)

    def test_default_and_explicit_budget_share_a_group(self):
        """Regression: grouping keyed on the raw ``max_rounds`` field,
        so ``None`` and an explicit budget equal to the resolved default
        fragmented into two size-1 groups — and size-1 groups are never
        batched, silently losing the whole dispatch."""
        from repro.core.executor import _default_round_budget
        from repro.parallel import TrialSpec, run_trials
        from repro.parallel.batch_sweep import dispatch_groups

        graph = make_graph("cycle", 0)
        config = random_configuration(
            make_protocol("smm"), graph, ensure_rng(SEEDS[0])
        )
        specs = [
            TrialSpec("smm", graph, config, backend="auto", max_rounds=None),
            TrialSpec(
                "smm", graph, config, backend="auto",
                max_rounds=_default_round_budget(graph),
            ),
        ]
        results = dispatch_groups(specs)
        assert sorted(results) == [0, 1]  # one group of two, batched
        assert all(r.backend == "batch" for r in results.values())
        # a genuinely different budget still fragments into size-1
        # groups, which are correctly left for the per-trial paths
        other = dataclasses.replace(specs[1], max_rounds=3)
        assert dispatch_groups([specs[0], other]) == {}
        # end-to-end: the runner agrees with per-trial execution
        batched = run_trials(specs, jobs=1)
        per_trial = run_trials(specs, jobs=1, batch_sweep=False)
        for a, b in zip(batched, per_trial):
            assert a.backend == "batch"
            assert_equivalent(a, b)

    def test_observed_specs_stay_per_trial(self):
        from repro.parallel import TrialSpec, run_trials, sweep_eligible

        graph = make_graph("cycle", 0)
        specs = [
            TrialSpec("smm", graph, seed=s, backend="auto", telemetry=True)
            for s in SEEDS
        ]
        assert not any(sweep_eligible(spec) for spec in specs)
        results = run_trials(specs, jobs=1)
        assert all(r.backend == "vectorized" for r in results)
        assert all(r.telemetry is not None for r in results)

    def test_counter_exports_identical_across_batching_and_jobs(self):
        from repro.observability import MetricsRegistry, use_registry
        from repro.parallel import run_trials

        def exposition(batch_sweep, jobs):
            registry = MetricsRegistry()
            with use_registry(registry):
                run_trials(
                    self._specs("auto"), jobs=jobs, batch_sweep=batch_sweep
                )
            return registry.exposition(kinds=("counter",))

        strip = TestMetricsEquivalence._strip_backend_families
        reference = strip(exposition(False, 1))
        for jobs in (1, 2):
            assert strip(exposition(True, jobs)) == reference


class TestSharedGraphEquivalence:
    """The zero-copy handoff is invisible in results and metrics: a
    sweep over shared-memory graphs is byte-identical to the inline
    sweep, for either handoff policy, and leaves no segment behind."""

    def _specs(self):
        from repro.parallel import TrialSpec

        return [
            TrialSpec(
                key,
                make_graph(family, 0),
                random_configuration(
                    make_protocol(key), make_graph(family, 0), ensure_rng(seed)
                ),
                backend="vectorized",  # ineligible for batching: the
                # specs must actually cross the process boundary
            )
            for key in ("smm", "sis")
            for family in FAMILIES
            for seed in SEEDS
        ]

    @pytest.mark.parametrize("policy", ("auto", "always", "never"))
    def test_pool_results_identical_under_handoff(self, policy):
        from repro.observability import MetricsRegistry, use_registry
        from repro.parallel import leaked_shared_segments, run_trials

        def sweep(jobs, shared):
            registry = MetricsRegistry()
            with use_registry(registry):
                results = run_trials(
                    self._specs(), jobs=jobs, shared_graphs=shared
                )
            return results, registry.exposition(kinds=("counter",))

        inline_results, inline_counters = sweep(1, "never")
        pool_results, pool_counters = sweep(2, policy)
        for ref, res in zip(inline_results, pool_results):
            assert_equivalent(ref, res)
            assert res.backend == "vectorized"
        assert pool_counters == inline_counters
        assert leaked_shared_segments() == []
