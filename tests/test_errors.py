"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ExperimentError,
    GraphError,
    InvalidConfigurationError,
    NotConnectedError,
    ProtocolError,
    ReproError,
    SimulationError,
    StabilizationTimeout,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            NotConnectedError,
            ProtocolError,
            InvalidConfigurationError,
            StabilizationTimeout,
            SimulationError,
            ExperimentError,
        ],
    )
    def test_derives_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_not_connected_is_graph_error(self):
        assert issubclass(NotConnectedError, GraphError)

    def test_invalid_configuration_is_protocol_error(self):
        assert issubclass(InvalidConfigurationError, ProtocolError)

    def test_timeout_carries_execution(self):
        marker = object()
        err = StabilizationTimeout("nope", marker)
        assert err.execution is marker

    def test_timeout_execution_optional(self):
        assert StabilizationTimeout("nope").execution is None

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise NotConnectedError("x")
