"""Tests for the execution engine (all three daemons)."""

import pytest

from repro.core.configuration import Configuration
from repro.core.executor import (
    build_view,
    enabled_nodes,
    run_central,
    run_distributed,
    run_synchronous,
)
from repro.core.invariants import HistoryMonitor
from repro.errors import InvalidConfigurationError, StabilizationTimeout
from repro.core.protocol import Protocol, Rule
from repro.graphs.generators import cycle_graph, path_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.variants import LubyStyleMIS

SIS = SynchronousMaximalIndependentSet()
SMM = SynchronousMaximalMatching()


class CoinFlipBit(Protocol):
    """Randomized one-bit protocol with genuine zero-move rounds.

    A 0-node flips to 1 only when its per-round variate exceeds 1/2, so
    a synchronous round in which every pending node draws tails fires
    nothing — yet a round of communication has still elapsed.  Used to
    pin the rounds-are-elapsed-ticks accounting.
    """

    name = "coin-flip-bit"
    uses_randomness = True

    def rules(self):
        return (
            Rule(
                "FLIP",
                guard=lambda v: v.state == 0 and v.rand > 0.5,
                action=lambda v: 1,
            ),
        )

    def initial_state(self, node, graph):
        return 0

    def random_state(self, node, graph, rng):
        return int(rng.integers(2))

    def is_legitimate(self, graph, config):
        return all(s == 1 for s in config.values())

    def is_quiescent(self, graph, config):
        # losing every coin toss proves nothing about the next round
        return all(s == 1 for s in config.values())


COIN = CoinFlipBit()


class TestBuildView:
    def test_view_contents(self):
        g = path_graph(3)
        cfg = {0: 0, 1: 1, 2: 0}
        v = build_view(SIS, g, cfg, 1)
        assert v.node == 1 and v.state == 1
        assert v.neighbor_states == {0: 0, 2: 0}

    def test_view_with_rand_map(self):
        g = path_graph(3)
        cfg = {0: 0, 1: 1, 2: 0}
        rands = {0: 0.1, 1: 0.5, 2: 0.9}
        v = build_view(SIS, g, cfg, 1, rands)
        assert v.rand == 0.5
        assert v.neighbor_rand == {0: 0.1, 2: 0.9}


class TestEnabledNodes:
    def test_all_enabled_from_zero(self):
        g = path_graph(4)
        cfg = {i: 0 for i in range(4)}
        # all can enter: nobody's larger neighbour is in the set
        assert enabled_nodes(SIS, g, cfg) == (0, 1, 2, 3)

    def test_stable_configuration_empty(self):
        g = path_graph(4)
        stable = {0: 0, 1: 1, 2: 0, 3: 1}
        assert enabled_nodes(SIS, g, stable) == ()


class TestRunSynchronous:
    def test_clean_start_default(self):
        g = path_graph(5)
        ex = run_synchronous(SIS, g)
        assert ex.stabilized and ex.legitimate
        assert ex.initial == {i: 0 for i in range(5)}

    def test_round_and_move_accounting(self):
        g = path_graph(4)
        ex = run_synchronous(SIS, g)
        assert ex.moves == sum(ex.moves_by_rule.values())
        assert len(ex.move_log) == ex.rounds
        assert all(ex.move_log)  # every active round has movers

    def test_zero_round_run(self):
        g = path_graph(4)
        stable = {0: 0, 1: 1, 2: 0, 3: 1}
        ex = run_synchronous(SIS, g, stable)
        assert ex.stabilized and ex.rounds == 0 and ex.moves == 0
        assert ex.final == stable

    def test_history_recording(self):
        g = path_graph(5)
        ex = run_synchronous(SIS, g, record_history=True)
        assert ex.history is not None
        assert len(ex.history) == ex.rounds + 1
        assert ex.history[0] == ex.initial
        assert ex.history[-1] == ex.final

    def test_no_history_by_default(self):
        assert run_synchronous(SIS, path_graph(3)).history is None

    def test_budget_exhaustion_flagged(self):
        from repro.matching.variants import ArbitraryChoiceSMM, clockwise_chooser

        g = cycle_graph(4)
        bad = ArbitraryChoiceSMM(clockwise_chooser(4))
        ex = run_synchronous(bad, g, {i: None for i in g.nodes}, max_rounds=10)
        assert not ex.stabilized and ex.rounds == 10

    def test_raise_on_timeout(self):
        from repro.matching.variants import ArbitraryChoiceSMM, clockwise_chooser

        g = cycle_graph(4)
        bad = ArbitraryChoiceSMM(clockwise_chooser(4))
        with pytest.raises(StabilizationTimeout) as info:
            run_synchronous(
                bad,
                g,
                {i: None for i in g.nodes},
                max_rounds=10,
                raise_on_timeout=True,
            )
        assert info.value.execution is not None

    def test_invalid_initial_configuration_rejected(self):
        g = path_graph(3)
        with pytest.raises(InvalidConfigurationError):
            run_synchronous(SMM, g, {0: 2, 1: None, 2: None})  # 2 not adjacent to 0

    def test_monitors_called(self):
        g = path_graph(5)
        mon = HistoryMonitor()
        ex = run_synchronous(SIS, g, monitors=[mon])
        assert len(mon.configurations) == ex.rounds + 1
        assert mon.configurations[0] == ex.initial
        assert mon.configurations[-1] == ex.final

    def test_rounds_to_stabilize(self):
        ex = run_synchronous(SIS, path_graph(4))
        assert ex.rounds_to_stabilize() == ex.rounds

    def test_rounds_to_stabilize_raises_on_divergence(self):
        from repro.matching.variants import ArbitraryChoiceSMM, clockwise_chooser

        g = cycle_graph(4)
        bad = ArbitraryChoiceSMM(clockwise_chooser(4))
        ex = run_synchronous(bad, g, {i: None for i in g.nodes}, max_rounds=6)
        with pytest.raises(StabilizationTimeout):
            ex.rounds_to_stabilize()

    def test_moved_nodes(self):
        g = path_graph(4)
        ex = run_synchronous(SIS, g)
        assert ex.moved_nodes() <= set(g.nodes)
        assert ex.moved_nodes()  # someone moved from the clean start

    def test_daemon_label(self):
        assert run_synchronous(SIS, path_graph(3)).daemon == "synchronous"


class TestRoundsAreElapsedTicks:
    """Regression: ``rounds`` counts elapsed ticks, not active rounds.

    An unlucky synchronous round of a randomized protocol (every guard
    lost its draw) used to vanish from the accounting entirely; it now
    consumes a round and logs an empty move entry.
    """

    def test_zero_move_rounds_counted_and_logged(self):
        unlucky_seen = False
        for seed in range(12):
            ex = run_synchronous(COIN, path_graph(4), rng=seed)
            assert ex.stabilized and ex.legitimate
            assert ex.rounds == len(ex.move_log)
            assert ex.moves == sum(len(entry) for entry in ex.move_log) == 4
            unlucky_seen = unlucky_seen or any(
                not entry for entry in ex.move_log
            )
        # with 12 seeds of 4 fair coins some round comes up all-tails
        assert unlucky_seen

    def test_history_spans_zero_move_rounds(self):
        for seed in range(12):
            ex = run_synchronous(COIN, path_graph(4), rng=seed, record_history=True)
            assert len(ex.history) == ex.rounds + 1

    def test_distributed_counts_every_step(self):
        for seed in range(8):
            ex = run_distributed(
                COIN, path_graph(4), rng=seed, activation_probability=0.7
            )
            assert ex.stabilized
            assert ex.rounds == len(ex.move_log)


class TestExactBudgetStabilization:
    """Regression: a run that stabilizes exactly on its last budgeted
    round must report ``stabilized=True`` — the budget-exhaustion path
    now performs the same (randomness-free) quiescence check for every
    protocol, not just deterministic ones.
    """

    def test_deterministic_exact_budget(self):
        g = path_graph(6)
        free = run_synchronous(SIS, g)
        assert free.stabilized and free.rounds > 0
        pinned = run_synchronous(SIS, g, max_rounds=free.rounds)
        assert pinned.stabilized
        assert pinned.rounds == free.rounds
        assert pinned.final == free.final

    def test_randomized_exact_budget(self):
        luby = LubyStyleMIS()
        g = cycle_graph(9)
        free = run_synchronous(luby, g, rng=7)
        assert free.stabilized and free.rounds > 0
        pinned = run_synchronous(luby, g, rng=7, max_rounds=free.rounds)
        assert pinned.stabilized
        assert pinned.rounds == free.rounds
        assert pinned.final == free.final

    def test_one_round_short_still_times_out(self):
        luby = LubyStyleMIS()
        g = cycle_graph(9)
        free = run_synchronous(luby, g, rng=7)
        short = run_synchronous(luby, g, rng=7, max_rounds=free.rounds - 1)
        assert not short.stabilized
        assert short.rounds == free.rounds - 1


class TestRunCentral:
    def test_converges_and_counts_moves(self):
        g = cycle_graph(7)
        ex = run_central(SIS, g, strategy="random", rng=1)
        assert ex.stabilized and ex.legitimate
        assert ex.rounds == ex.moves
        assert all(len(entry) == 1 for entry in ex.move_log)

    def test_min_id_deterministic(self):
        g = cycle_graph(7)
        a = run_central(SIS, g, strategy="min-id")
        b = run_central(SIS, g, strategy="min-id")
        assert a.moves == b.moves and a.final == b.final

    def test_round_robin(self):
        ex = run_central(SIS, cycle_graph(6), strategy="round-robin")
        assert ex.stabilized and ex.legitimate

    def test_budget_exhaustion(self):
        g = path_graph(6)
        ex = run_central(SIS, g, max_moves=1)
        assert not ex.stabilized and ex.moves == 1

    def test_raise_on_timeout(self):
        with pytest.raises(StabilizationTimeout):
            run_central(
                SIS, path_graph(6), max_moves=1, raise_on_timeout=True
            )

    def test_history(self):
        ex = run_central(SIS, path_graph(5), strategy="min-id", record_history=True)
        assert ex.history is not None and len(ex.history) == ex.moves + 1

    def test_daemon_label_includes_strategy(self):
        ex = run_central(SIS, path_graph(3), strategy="min-id")
        assert ex.daemon == "central:MinIdStrategy"


class TestRunDistributed:
    def test_converges(self):
        g = cycle_graph(9)
        ex = run_distributed(SIS, g, rng=3, activation_probability=0.5)
        assert ex.stabilized and ex.legitimate

    def test_probability_one_is_synchronous(self):
        g = path_graph(6)
        sync = run_synchronous(SIS, g)
        dist = run_distributed(SIS, g, rng=1, activation_probability=1.0)
        assert dist.final == sync.final
        assert dist.rounds == sync.rounds

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            run_distributed(SIS, path_graph(3), activation_probability=1.5)

    def test_liveness_with_tiny_probability(self):
        # even with p ~ 0 the daemon activates someone every step
        ex = run_distributed(
            SIS, path_graph(5), rng=2, activation_probability=1e-9, max_steps=200
        )
        assert ex.stabilized
        assert all(len(entry) >= 1 for entry in ex.move_log)

    def test_smm_under_distributed_daemon(self):
        # SMM tolerates partial activation: it still converges and the
        # final matching is maximal
        from repro.matching.verify import verify_execution

        g = cycle_graph(8)
        ex = run_distributed(SMM, g, rng=5, activation_probability=0.6)
        verify_execution(g, ex)
