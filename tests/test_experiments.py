"""Smoke tests for all ten experiment modules at reduced scale.

Each test runs an experiment with tiny parameters and asserts the
*claims* the experiment is supposed to validate — so a regression in
any protocol or substrate fails here even if the unit tests miss it.
"""

import pytest

from repro.experiments import (
    e1_smm_convergence,
    e2_sis_convergence,
    e3_transitions,
    e4_counterexample,
    e5_baseline,
    e6_growth,
    e7_churn,
    e8_adhoc,
    e9_transform,
    e10_scaling,
)


class TestE1:
    def test_theorem1_holds(self):
        r = e1_smm_convergence.run(
            families=("cycle", "tree"), sizes=(4, 8), trials=4, seed=1
        )
        assert r.rows
        assert all(row["within_bound"] == 1.0 for row in r.rows)
        assert all(row["rounds_max"] <= row["bound"] for row in r.rows)

    def test_includes_exhaustive_rows(self):
        r = e1_smm_convergence.run(
            families=("cycle",), sizes=(4,), trials=2, seed=1
        )
        assert any(row["init"] == "exhaustive" for row in r.rows)


class TestE2:
    def test_theorem2_holds(self):
        r = e2_sis_convergence.run(
            families=("cycle", "tree"), sizes=(4, 8), trials=4, seed=1
        )
        assert all(row["within_bound"] == 1.0 for row in r.rows)
        assert all(row["greedy_fixpoint"] for row in r.rows)

    def test_worst_case_series_linear(self):
        r = e2_sis_convergence.run_worst_case_series(sizes=(8, 16, 32))
        ratios = [row["rounds_over_n"] for row in r.rows]
        assert all(0.8 <= x <= 1.0 for x in ratios)


class TestE3:
    def test_all_observed_arrows_in_figure3(self):
        r = e3_transitions.run(families=("cycle", "tree"), sizes=(4, 8), trials=5)
        assert r.rows
        assert all(row["in_figure_3"] for row in r.rows)

    def test_observes_most_arrows(self):
        r = e3_transitions.run(
            families=("cycle", "path", "tree"), sizes=(4, 8, 16), trials=15
        )
        assert len(r.rows) >= 8  # of the 10 Fig. 3 arrows


class TestE4:
    def test_clockwise_livelocks_minid_stabilizes(self):
        r = e4_counterexample.run(cycle_sizes=(4, 8), randomized_trials=4)
        by_variant = {}
        for row in r.rows:
            by_variant.setdefault(row["variant"], []).append(row)
        assert all(not row["stabilized"] for row in by_variant["arbitrary(clockwise)"])
        assert all(row["livelock_period"] == 2 for row in by_variant["arbitrary(clockwise)"])
        assert all(row["stabilized"] for row in by_variant["min-id (SMM)"])
        assert all(
            row["rounds"] <= row["bound"] for row in by_variant["min-id (SMM)"]
        )

    def test_odd_cycle_rejected(self):
        with pytest.raises(ValueError):
            e4_counterexample.run(cycle_sizes=(5,))


class TestE5:
    def test_refined_baseline_slower(self):
        r = e5_baseline.run(families=("cycle", "tree"), sizes=(8, 16), trials=3)
        assert all(row["slowdown_id"] >= 1.0 for row in r.rows)
        assert all(
            row["hh_central_moves"] <= row["moves_bound"] for row in r.rows
        )


class TestE6:
    def test_lemmas_hold(self):
        r = e6_growth.run(families=("cycle", "tree"), sizes=(8, 16), trials=5)
        assert all(row["lemma1_violations"] == 0 for row in r.rows)
        assert all(row["lemma10_violations"] == 0 for row in r.rows)
        assert all(
            row["min_two_round_growth"] is None or row["min_two_round_growth"] >= 2
            for row in r.rows
        )


class TestE7:
    def test_recovery_cheaper_than_fresh(self):
        r = e7_churn.run(
            families=("tree",), sizes=(24,), churn_levels=(1, 2), trials=4, seed=2
        )
        # aggregate: recovery strictly cheaper on average
        rec = sum(row["recovery_rounds"] for row in r.rows)
        fresh = sum(row["fresh_rounds"] for row in r.rows)
        assert rec < fresh
        assert all(row["touched_frac"] <= 1.0 for row in r.rows)


class TestE8:
    def test_static_tracks_synchronous(self):
        r = e8_adhoc.run_static(sizes=(10,), trials=2, seed=3)
        assert all(row["stabilized"] for row in r.rows)
        for row in r.rows:
            # beacon time within a small factor of synchronous rounds
            assert row["beacon_rounds"] <= 4 * max(row["sync_rounds"], 1) + 6

    def test_mobile_availability_degrades_gracefully(self):
        r = e8_adhoc.run_mobile(n=10, speeds=(0.0, 0.05), horizon=40.0, seed=4)
        assert all(0.0 <= row["availability"] <= 1.0 for row in r.rows)


class TestE9:
    def test_refinement_ports_all_protocols(self):
        r = e9_transform.run(families=("cycle",), sizes=(8,), trials=2)
        assert all(row["all_legitimate"] for row in r.rows)
        assert {row["protocol"] for row in r.rows} == {
            "HsuHuang92",
            "Grundy",
            "MDS",
        }

    def test_raw_daemon_livelocks_documented(self):
        r = e9_transform.run(families=("cycle",), sizes=(8,), trials=1)
        livelock_notes = [n for n in r.notes if "stabilized=False" in n]
        assert len(livelock_notes) == 3


class TestE10:
    def test_engines_agree(self):
        r = e10_scaling.run(sizes=(64,), seed=5)
        assert all(row["agree"] for row in r.rows)
        assert all(row["rounds_ref"] == row["rounds_vec"] for row in r.rows)


class TestE11:
    def test_acceptance_choice_is_free(self):
        from repro.experiments import e11_ablations

        r = e11_ablations.run_acceptance_choosers(
            families=("cycle",), sizes=(8, 16), trials=4
        )
        assert all(row["all_correct"] for row in r.rows)
        deterministic = [
            row for row in r.rows if row["accept"] in ("min-id", "max-id")
        ]
        assert all(row["rounds_max"] <= row["bound"] for row in deterministic)

    def test_beacon_parameters_safe_timeouts_stabilize(self):
        from repro.experiments import e11_ablations

        r = e11_ablations.run_beacon_parameters(
            n=10, loss_rates=(0.0, 0.2), timeout_factors=(2.5,), trials=2
        )
        assert all(row["all_stabilized"] for row in r.rows)
