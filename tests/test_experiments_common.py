"""Tests for the experiment harness plumbing."""

import pytest

from repro.core.configuration import Configuration
from repro.errors import ExperimentError
from repro.experiments.common import (
    ExperimentResult,
    detect_cycle,
    exhaustive_configurations,
    graph_workloads,
    initial_configurations,
    local_state_space,
)
from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet

SMM = SynchronousMaximalMatching()
SIS = SynchronousMaximalIndependentSet()


class TestExperimentResult:
    def test_add_and_table(self):
        r = ExperimentResult("EX", "artifact", columns=["a", "b"])
        r.add(a=1, b=2)
        r.note("hello")
        out = r.table()
        assert "[EX] artifact" in out
        assert "hello" in out

    def test_column_access(self):
        r = ExperimentResult("EX", "x", columns=["a"])
        r.add(a=1)
        r.add(a=2)
        assert r.column("a") == [1, 2]


class TestGraphWorkloads:
    def test_deterministic_families_once_per_cell(self):
        cells = list(graph_workloads(["cycle"], [4, 8], seed=1, graphs_per_cell=5))
        assert len(cells) == 2

    def test_random_families_multiple_per_cell(self):
        cells = list(graph_workloads(["tree"], [8], seed=1, graphs_per_cell=3))
        assert len(cells) == 3

    def test_reproducible(self):
        a = [g for _, _, g, _ in graph_workloads(["tree", "er-sparse"], [8], seed=5)]
        b = [g for _, _, g, _ in graph_workloads(["tree", "er-sparse"], [8], seed=5)]
        assert a == b

    def test_yields_requested_sizes(self):
        sizes = [n for _, n, _, _ in graph_workloads(["cycle", "path"], [4, 6], seed=1)]
        assert sizes == [4, 6, 4, 6]


class TestInitialConfigurations:
    def test_clean_mode(self):
        g = cycle_graph(5)
        configs = list(initial_configurations(SIS, g, "clean", 3, rng=1))
        assert len(configs) == 3
        assert all(c == {i: 0 for i in g.nodes} for c in configs)

    def test_random_mode_varies(self):
        g = cycle_graph(8)
        configs = list(initial_configurations(SIS, g, "random", 10, rng=1))
        assert len({c for c in configs}) > 1

    def test_unknown_mode(self):
        with pytest.raises(ExperimentError):
            list(initial_configurations(SIS, cycle_graph(4), "weird", 1, rng=1))


class TestLocalStateSpace:
    def test_pointer_protocol(self):
        g = path_graph(3)
        assert local_state_space(SMM, g, 1) == [None, 0, 2]

    def test_bit_protocol(self):
        assert local_state_space(SIS, cycle_graph(4), 0) == [0, 1]


class TestExhaustiveConfigurations:
    def test_smm_c4_has_81(self):
        assert sum(1 for _ in exhaustive_configurations(SMM, cycle_graph(4))) == 81

    def test_sis_counts(self):
        assert sum(1 for _ in exhaustive_configurations(SIS, path_graph(5))) == 32

    def test_limit_enforced(self):
        with pytest.raises(ExperimentError):
            list(exhaustive_configurations(SIS, complete_graph(30), limit=100))

    def test_all_valid(self):
        g = cycle_graph(4)
        for cfg in exhaustive_configurations(SMM, g):
            SMM.validate_configuration(g, cfg)


class TestDetectCycle:
    def test_no_cycle(self):
        h = [Configuration({0: i}) for i in range(5)]
        assert detect_cycle(h) is None

    def test_period_two(self):
        a, b = Configuration({0: 0}), Configuration({0: 1})
        assert detect_cycle([a, b, a, b]) == (0, 2)

    def test_rho_shape(self):
        a, b, c = (Configuration({0: i}) for i in range(3))
        assert detect_cycle([a, b, c, b]) == (1, 2)

    def test_fixpoint_is_period_one(self):
        a = Configuration({0: 0})
        assert detect_cycle([a, a]) == (0, 1)
