"""Tests for fault injection and topology-change migration."""

import pytest

from repro.core.configuration import Configuration
from repro.core.executor import run_synchronous
from repro.core.faults import (
    migrate_configuration,
    perturb_configuration,
    random_configuration,
)
from repro.graphs.generators import cycle_graph, path_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet

SMM = SynchronousMaximalMatching()
SIS = SynchronousMaximalIndependentSet()


class TestRandomConfiguration:
    def test_valid_for_smm(self):
        g = cycle_graph(8)
        cfg = random_configuration(SMM, g, rng=1)
        SMM.validate_configuration(g, cfg)

    def test_valid_for_sis(self):
        g = cycle_graph(8)
        cfg = random_configuration(SIS, g, rng=1)
        assert all(v in (0, 1) for v in cfg.values())

    def test_reproducible(self):
        g = cycle_graph(8)
        assert random_configuration(SMM, g, rng=5) == random_configuration(
            SMM, g, rng=5
        )

    def test_covers_state_space(self):
        g = cycle_graph(8)
        import numpy as np

        gen = np.random.default_rng(0)
        seen = set()
        for _ in range(50):
            seen.update(random_configuration(SMM, g, gen).values())
        assert None in seen and len(seen) > 2


class TestPerturbConfiguration:
    def test_fraction_touches_at_most_count(self):
        g = cycle_graph(10)
        base = Configuration({i: 0 for i in g.nodes})
        out = perturb_configuration(SIS, g, base, fraction=0.3, rng=1)
        assert len(out.diff(base)) <= 3

    def test_count_parameter(self):
        g = cycle_graph(10)
        base = Configuration({i: 0 for i in g.nodes})
        out = perturb_configuration(SIS, g, base, count=10, rng=2)
        # all ten nodes redrawn (some may redraw their old value)
        assert len(out.diff(base)) <= 10

    def test_fraction_zero_identity(self):
        g = cycle_graph(6)
        base = Configuration({i: 0 for i in g.nodes})
        assert perturb_configuration(SIS, g, base, fraction=0.0, rng=1) == base

    def test_small_fraction_rounds_up_to_one(self):
        g = cycle_graph(6)
        base = Configuration({i: None for i in g.nodes})
        out = perturb_configuration(SMM, g, base, fraction=0.01, rng=3)
        assert len(out.diff(base)) <= 1

    def test_invalid_fraction(self):
        g = cycle_graph(6)
        base = Configuration({i: 0 for i in g.nodes})
        with pytest.raises(ValueError):
            perturb_configuration(SIS, g, base, fraction=1.5)

    def test_invalid_count(self):
        g = cycle_graph(6)
        base = Configuration({i: 0 for i in g.nodes})
        with pytest.raises(ValueError):
            perturb_configuration(SIS, g, base, count=99)

    def test_result_is_valid(self):
        g = cycle_graph(8)
        base = random_configuration(SMM, g, rng=1)
        out = perturb_configuration(SMM, g, base, fraction=0.5, rng=2)
        SMM.validate_configuration(g, out)


class TestMigrateConfiguration:
    def test_pointer_at_failed_link_sanitized(self):
        g = cycle_graph(4)
        stable = Configuration({0: 1, 1: 0, 2: 3, 3: 2})
        g2 = g.with_edges(remove=[(0, 1)])
        migrated = migrate_configuration(SMM, g, g2, stable)
        assert migrated[0] is None and migrated[1] is None
        assert migrated[2] == 3 and migrated[3] == 2  # untouched pair

    def test_new_link_preserves_states(self):
        g = path_graph(4)
        stable = Configuration({0: 1, 1: 0, 2: 3, 3: 2})
        g2 = g.with_edges(add=[(0, 3)])
        migrated = migrate_configuration(SMM, g, g2, stable)
        assert migrated == stable

    def test_bit_states_never_invalidated(self):
        g = cycle_graph(5)
        cfg = random_configuration(SIS, g, rng=1)
        g2 = g.with_edges(remove=[(0, 1)], add=[(0, 2)])
        assert migrate_configuration(SIS, g, g2, cfg) == cfg

    def test_node_set_change_rejected(self):
        with pytest.raises(ValueError):
            migrate_configuration(
                SIS, cycle_graph(4), cycle_graph(5), {i: 0 for i in range(4)}
            )

    def test_recovery_after_migration(self):
        """End-to-end: stabilize, fail a link, migrate, re-stabilize."""
        g = cycle_graph(8)
        ex = run_synchronous(SMM, g, random_configuration(SMM, g, rng=3))
        g2 = g.with_edges(remove=[(0, 1)])
        migrated = migrate_configuration(SMM, g, g2, ex.final)
        ex2 = run_synchronous(SMM, g2, migrated)
        assert ex2.stabilized and ex2.legitimate
