"""Tests for graph generators."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError, NotConnectedError
from repro.graphs.generators import (
    FAMILY_NAMES,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    family,
    from_networkx,
    grid_graph,
    path_graph,
    random_geometric_graph,
    random_tree,
    star_graph,
    unit_disk_graph,
)


class TestDeterministicFamilies:
    def test_cycle_structure(self):
        g = cycle_graph(5)
        assert g.n == 5 and g.m == 5
        assert all(g.degree(v) == 2 for v in g.nodes)
        assert g.is_connected()

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path_structure(self):
        g = path_graph(5)
        assert g.m == 4
        assert g.degree(0) == g.degree(4) == 1
        assert all(g.degree(v) == 2 for v in (1, 2, 3))

    def test_path_singleton(self):
        g = path_graph(1)
        assert g.n == 1 and g.m == 0

    def test_star_structure(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_star_too_small(self):
        with pytest.raises(GraphError):
            star_graph(1)

    def test_complete_structure(self):
        g = complete_graph(6)
        assert g.m == 15
        assert all(g.degree(v) == 5 for v in g.nodes)

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.m == 6
        assert not g.has_edge(0, 1)  # same part
        assert g.has_edge(0, 2)

    def test_complete_bipartite_invalid(self):
        with pytest.raises(GraphError):
            complete_bipartite_graph(0, 3)

    def test_grid_structure(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.is_connected()

    def test_grid_invalid(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)


class TestRandomTree:
    def test_tree_edge_count(self):
        for n in (1, 2, 3, 10, 40):
            g = random_tree(n, rng=3)
            assert g.n == n and g.m == max(0, n - 1)
            assert g.is_connected()

    def test_reproducible(self):
        assert random_tree(15, rng=9) == random_tree(15, rng=9)

    def test_different_seeds_differ(self):
        trees = {random_tree(15, rng=s) for s in range(8)}
        assert len(trees) > 1

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            random_tree(0)


class TestErdosRenyi:
    def test_connected_by_default(self):
        for seed in range(5):
            assert erdos_renyi_graph(20, 0.15, rng=seed).is_connected()

    def test_p_one_complete(self):
        g = erdos_renyi_graph(6, 1.0, rng=1)
        assert g.m == 15

    def test_p_zero_unconnected_allowed(self):
        g = erdos_renyi_graph(5, 0.0, rng=1, connected=False)
        assert g.m == 0

    def test_p_zero_connected_fallback(self):
        # impossible as G(n,0); the fallback adds bridging edges
        g = erdos_renyi_graph(5, 0.0, rng=1, max_tries=3)
        assert g.is_connected()

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, 1.5)

    def test_reproducible(self):
        assert erdos_renyi_graph(15, 0.3, rng=2) == erdos_renyi_graph(15, 0.3, rng=2)

    def test_edge_density_sane(self):
        g = erdos_renyi_graph(40, 0.5, rng=3, connected=False)
        expected = 0.5 * 40 * 39 / 2
        assert 0.6 * expected < g.m < 1.4 * expected


class TestGeometric:
    def test_positions_shape_and_range(self):
        g, pos = random_geometric_graph(15, 0.5, rng=1, return_positions=True)
        assert pos.shape == (15, 2)
        assert (pos >= 0).all() and (pos <= 1).all()

    def test_edges_match_distances(self):
        g, pos = random_geometric_graph(12, 0.4, rng=2, return_positions=True)
        for u in g.nodes:
            for v in g.nodes:
                if u >= v:
                    continue
                d = float(np.linalg.norm(pos[u] - pos[v]))
                assert g.has_edge(u, v) == (d <= 0.4 + 1e-12)

    def test_unconnectable_raises(self):
        with pytest.raises(NotConnectedError):
            random_geometric_graph(30, 0.01, rng=1, max_tries=3)

    def test_invalid_radius(self):
        with pytest.raises(GraphError):
            random_geometric_graph(5, 0.0)

    def test_unit_disk_from_positions(self):
        pos = np.array([[0.0, 0.0], [0.0, 0.5], [0.9, 0.9]])
        g = unit_disk_graph(pos, 0.6)
        assert g.has_edge(0, 1) and not g.has_edge(0, 2)

    def test_unit_disk_bad_shape(self):
        with pytest.raises(GraphError):
            unit_disk_graph(np.zeros((3, 3)), 0.5)

    def test_unit_disk_empty(self):
        g = unit_disk_graph(np.zeros((0, 2)), 0.5)
        assert g.n == 0


class TestFromNetworkx:
    def test_roundtrip(self):
        nxg = nx.cycle_graph(5)
        g = from_networkx(nxg)
        assert g == cycle_graph(5)

    def test_non_int_labels_rejected(self):
        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        with pytest.raises(GraphError):
            from_networkx(nxg)


class TestFamilyRegistry:
    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_every_family_builds_connected(self, name):
        make = family(name)
        g = make(12, np.random.default_rng(5))
        assert g.n == 12
        assert g.is_connected()

    def test_grid_family_trims_to_exact_n(self):
        g = family("grid")(10, None)
        assert g.n == 10 and g.is_connected()

    def test_unknown_family(self):
        with pytest.raises(GraphError):
            family("moebius")

    def test_deterministic_families_ignore_rng(self):
        assert family("cycle")(8, np.random.default_rng(1)) == cycle_graph(8)
