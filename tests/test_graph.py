"""Tests for the immutable Graph class."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import GraphError
from repro.graphs.graph import Graph

from conftest import connected_graphs


def triangle() -> Graph:
    return Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_basic(self):
        g = Graph([0, 1, 2], [(0, 1)])
        assert g.n == 3
        assert g.m == 1

    def test_nodes_sorted(self):
        g = Graph([3, 1, 2], [])
        assert g.nodes == (1, 2, 3)

    def test_edges_canonical(self):
        g = Graph([0, 1], [(1, 0)])
        assert g.edges == frozenset({(0, 1)})

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(GraphError):
            Graph([0, 0, 1], [])

    def test_duplicate_edges_rejected(self):
        with pytest.raises(GraphError):
            Graph([0, 1], [(0, 1), (1, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph([0, 1], [(0, 0)])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(GraphError):
            Graph([0, 1], [(0, 2)])

    def test_non_int_node_rejected(self):
        with pytest.raises(GraphError):
            Graph(["a"], [])

    def test_empty_graph(self):
        g = Graph([], [])
        assert g.n == 0 and g.m == 0 and g.is_connected()


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph([0, 1, 2, 3], [(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0) == (1, 2, 3)

    def test_neighbors_unknown_node(self):
        with pytest.raises(GraphError):
            triangle().neighbors(9)

    def test_closed_neighbors(self):
        assert triangle().closed_neighbors(1) == (0, 1, 2)

    def test_degree(self):
        g = Graph([0, 1, 2], [(0, 1)])
        assert g.degree(0) == 1
        assert g.degree(2) == 0

    def test_max_degree(self):
        assert triangle().max_degree() == 2
        assert Graph([], []).max_degree() == 0

    def test_has_edge_both_orders(self):
        g = triangle()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_has_edge_self(self):
        assert not triangle().has_edge(1, 1)

    def test_contains_iter_len(self):
        g = triangle()
        assert 0 in g and 9 not in g
        assert list(g) == [0, 1, 2]
        assert len(g) == 3

    def test_equality_and_hash(self):
        a = Graph([0, 1], [(0, 1)])
        b = Graph([1, 0], [(1, 0)])
        c = Graph([0, 1], [])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a graph"


class TestStructure:
    def test_connected_triangle(self):
        assert triangle().is_connected()

    def test_disconnected(self):
        g = Graph([0, 1, 2], [(0, 1)])
        assert not g.is_connected()

    def test_components(self):
        g = Graph([0, 1, 2, 3], [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert comps == [frozenset({0, 1}), frozenset({2, 3})]

    def test_single_component(self):
        assert triangle().connected_components() == [frozenset({0, 1, 2})]


class TestDerivation:
    def test_with_edges_add(self):
        g = Graph([0, 1, 2], [(0, 1)])
        g2 = g.with_edges(add=[(1, 2)])
        assert g2.has_edge(1, 2) and not g.has_edge(1, 2)

    def test_with_edges_remove(self):
        g2 = triangle().with_edges(remove=[(0, 1)])
        assert not g2.has_edge(0, 1) and g2.m == 2

    def test_with_edges_add_existing_rejected(self):
        with pytest.raises(GraphError):
            triangle().with_edges(add=[(0, 1)])

    def test_with_edges_remove_absent_rejected(self):
        g = Graph([0, 1, 2], [(0, 1)])
        with pytest.raises(GraphError):
            g.with_edges(remove=[(1, 2)])

    def test_subgraph(self):
        sub = triangle().subgraph([0, 1])
        assert sub.nodes == (0, 1) and sub.edges == frozenset({(0, 1)})

    def test_subgraph_unknown_node(self):
        with pytest.raises(GraphError):
            triangle().subgraph([0, 9])

    def test_relabeled(self):
        g = Graph([0, 1], [(0, 1)])
        r = g.relabeled({0: 10, 1: 20})
        assert r.nodes == (10, 20) and r.has_edge(10, 20)

    def test_relabeled_must_cover(self):
        with pytest.raises(GraphError):
            triangle().relabeled({0: 1})

    def test_relabeled_must_be_injective(self):
        with pytest.raises(GraphError):
            triangle().relabeled({0: 5, 1: 5, 2: 6})


class TestInterop:
    def test_to_networkx(self):
        nxg = triangle().to_networkx()
        assert isinstance(nxg, nx.Graph)
        assert set(nxg.nodes) == {0, 1, 2}
        assert nxg.number_of_edges() == 3

    def test_from_edges_with_n(self):
        g = Graph.from_edges([(0, 1), (1, 2)], n=4)
        assert g.nodes == (0, 1, 2, 3)

    def test_from_edges_infers_nodes(self):
        g = Graph.from_edges([(5, 7)])
        assert g.nodes == (5, 7)

    def test_from_edges_out_of_range(self):
        with pytest.raises(GraphError):
            Graph.from_edges([(0, 5)], n=3)

    def test_adjacency_arrays_structure(self):
        g = Graph([0, 1, 2], [(0, 1), (1, 2)])
        indptr, indices, ids = g.adjacency_arrays()
        assert list(ids) == [0, 1, 2]
        assert list(indptr) == [0, 1, 3, 4]
        assert list(indices[indptr[1]:indptr[2]]) == [0, 2]

    def test_adjacency_arrays_non_contiguous_ids(self):
        g = Graph([10, 30, 20], [(10, 30)])
        indptr, indices, ids = g.adjacency_arrays()
        assert list(ids) == [10, 20, 30]
        # 10's sole neighbour is 30 -> dense index 2
        assert list(indices[indptr[0]:indptr[1]]) == [2]


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(connected_graphs())
    def test_handshake_lemma(self, g):
        assert sum(g.degree(v) for v in g.nodes) == 2 * g.m

    @settings(max_examples=30, deadline=None)
    @given(connected_graphs())
    def test_neighbor_symmetry(self, g):
        for u in g.nodes:
            for v in g.neighbors(u):
                assert u in g.neighbors(v)

    @settings(max_examples=30, deadline=None)
    @given(connected_graphs())
    def test_generated_graphs_connected(self, g):
        assert g.is_connected()

    @settings(max_examples=30, deadline=None)
    @given(connected_graphs())
    def test_adjacency_roundtrip(self, g):
        indptr, indices, ids = g.adjacency_arrays()
        for k, node in enumerate(ids):
            dense = indices[indptr[k]:indptr[k + 1]]
            assert tuple(int(ids[d]) for d in dense) == g.neighbors(int(node))
