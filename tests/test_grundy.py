"""Tests for the Grundy colouring extension."""

import pytest

from repro.coloring.grundy import GrundyColoring, _mex, is_grundy_coloring
from repro.core.configuration import Configuration
from repro.core.executor import run_central, run_synchronous
from repro.core.faults import random_configuration
from repro.core.transform import run_synchronized_central
from repro.errors import InvalidConfigurationError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)

GRUNDY = GrundyColoring()


class TestMex:
    def test_empty(self):
        assert _mex([]) == 0

    def test_gap(self):
        assert _mex([0, 1, 3]) == 2

    def test_contiguous(self):
        assert _mex([0, 1, 2]) == 3

    def test_missing_zero(self):
        assert _mex([1, 2]) == 0

    def test_duplicates(self):
        assert _mex([0, 0, 1, 1]) == 2


class TestIsGrundyColoring:
    def test_path_alternating(self):
        g = path_graph(4)
        assert is_grundy_coloring(g, {0: 0, 1: 1, 2: 0, 3: 1})

    def test_proper_but_not_grundy(self):
        g = path_graph(2)
        # colours 1,2: proper, but both should be mex-reducible
        assert not is_grundy_coloring(g, {0: 1, 1: 2})

    def test_improper_rejected(self):
        g = path_graph(2)
        assert not is_grundy_coloring(g, {0: 0, 1: 0})

    def test_complete_graph_rainbow(self):
        g = complete_graph(4)
        assert is_grundy_coloring(g, {0: 0, 1: 1, 2: 2, 3: 3})


class TestProtocol:
    def test_initial_state(self):
        assert GRUNDY.initial_state(0, cycle_graph(4)) == 0

    def test_random_state_within_degree_bound(self, rng):
        g = star_graph(6)
        for node in g.nodes:
            for _ in range(10):
                s = GRUNDY.random_state(node, g, rng)
                assert 0 <= s <= g.degree(node)

    def test_validate_rejects_negative(self):
        with pytest.raises(InvalidConfigurationError):
            GRUNDY.validate_state(0, cycle_graph(4), -1)

    def test_validate_rejects_oversized(self):
        with pytest.raises(InvalidConfigurationError):
            GRUNDY.validate_state(0, cycle_graph(4), 99)

    def test_legitimate_matches_checker(self):
        g = path_graph(4)
        assert GRUNDY.is_legitimate(g, {0: 0, 1: 1, 2: 0, 3: 1})
        assert not GRUNDY.is_legitimate(g, {0: 0, 1: 0, 2: 0, 3: 0})


class TestConvergence:
    def test_central_daemon(self, rng):
        for seed in range(5):
            g = erdos_renyi_graph(12, 0.3, rng=seed)
            cfg = random_configuration(GRUNDY, g, rng)
            ex = run_central(GRUNDY, g, cfg, strategy="random", rng=rng)
            assert ex.stabilized
            assert is_grundy_coloring(g, ex.final)

    @pytest.mark.parametrize("priority", ["id", "random"])
    def test_refined_synchronous(self, priority, rng):
        g = erdos_renyi_graph(14, 0.25, rng=2)
        cfg = random_configuration(GRUNDY, g, rng)
        ex = run_synchronized_central(GRUNDY, g, cfg, priority=priority, rng=rng)
        assert ex.stabilized
        assert is_grundy_coloring(g, ex.final)

    def test_colors_bounded_by_degree_plus_one(self, rng):
        g = erdos_renyi_graph(15, 0.3, rng=4)
        cfg = random_configuration(GRUNDY, g, rng)
        ex = run_central(GRUNDY, g, cfg, strategy="random", rng=rng)
        assert max(ex.final.values()) <= g.max_degree()

    def test_raw_synchronous_livelocks_on_symmetry(self):
        g = cycle_graph(6)
        ex = run_synchronous(
            GRUNDY, g, Configuration({i: 0 for i in g.nodes}), max_rounds=50
        )
        assert not ex.stabilized

    def test_raw_synchronous_can_converge_without_symmetry(self):
        """The raw synchronous daemon is not *always* divergent: from an
        asymmetric corruption the mex cascade can settle."""
        g = path_graph(3)
        cfg = {0: 0, 1: 1, 2: 1}
        ex = run_synchronous(GRUNDY, g, cfg, max_rounds=20)
        assert ex.stabilized and ex.rounds == 2
        assert is_grundy_coloring(g, ex.final)
