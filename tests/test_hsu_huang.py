"""Tests for the Hsu–Huang central-daemon baseline."""

import pytest

from repro.analysis.theory import hsu_huang_move_bound
from repro.core.executor import run_central
from repro.core.faults import random_configuration
from repro.core.transform import run_synchronized_central
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.matching.hsu_huang import HsuHuangMatching, central_move_bound
from repro.matching.smm import max_id_chooser
from repro.matching.verify import verify_execution

HH = HsuHuangMatching()


class TestCentralConvergence:
    @pytest.mark.parametrize("strategy", ["random", "min-id", "round-robin"])
    def test_converges_under_every_strategy(self, strategy, rng):
        g = cycle_graph(9)
        cfg = random_configuration(HH, g, rng)
        ex = run_central(HH, g, cfg, strategy=strategy, rng=rng)
        verify_execution(g, ex)

    def test_random_graphs(self, rng):
        for seed in range(5):
            g = erdos_renyi_graph(12, 0.3, rng=seed)
            cfg = random_configuration(HH, g, rng)
            ex = run_central(HH, g, cfg, strategy="random", rng=rng)
            verify_execution(g, ex)

    def test_moves_within_published_bound(self, rng):
        for n in (6, 10, 14):
            g = cycle_graph(n)
            cfg = random_configuration(HH, g, rng)
            ex = run_central(HH, g, cfg, strategy="random", rng=rng)
            assert ex.moves <= hsu_huang_move_bound(n)

    def test_bound_helper(self):
        assert central_move_bound(5) == 125

    def test_arbitrary_choice_is_safe_under_central_daemon(self, rng):
        """The max-id chooser (an 'arbitrary' choice) is fine when moves
        are serialized — the livelock needs simultaneity."""
        g = cycle_graph(8)
        proto = HsuHuangMatching(propose_chooser=max_id_chooser)
        cfg = random_configuration(proto, g, rng)
        ex = run_central(proto, g, cfg, strategy="random", rng=rng)
        verify_execution(g, ex)


class TestSynchronizedConversion:
    """The paper's Section 3 conversion claim."""

    @pytest.mark.parametrize("priority", ["id", "random"])
    def test_refined_runs_converge(self, priority, rng):
        g = erdos_renyi_graph(14, 0.25, rng=3)
        cfg = random_configuration(HH, g, rng)
        ex = run_synchronized_central(HH, g, cfg, priority=priority, rng=rng)
        verify_execution(g, ex)

    def test_refined_slower_than_smm_on_average(self, rng):
        """'the resulting protocol is not as fast': over a batch of
        instances the refined baseline needs strictly more rounds in
        total than SMM."""
        from repro.core.executor import run_synchronous
        from repro.matching.smm import SynchronousMaximalMatching

        smm = SynchronousMaximalMatching()
        smm_total = 0
        hh_total = 0
        for seed in range(8):
            g = erdos_renyi_graph(16, 0.25, rng=seed)
            cfg = random_configuration(smm, g, rng)
            smm_total += run_synchronous(smm, g, cfg).rounds
            hh_total += run_synchronized_central(
                HH, g, cfg, priority="id", count_beacon_rounds=True
            ).rounds
        assert hh_total > smm_total

    def test_beacon_round_accounting(self):
        g = path_graph(6)
        cfg = {i: None for i in g.nodes}
        raw = run_synchronized_central(HH, g, cfg, priority="id")
        beacon = run_synchronized_central(
            HH, g, cfg, priority="id", count_beacon_rounds=True
        )
        assert beacon.rounds == 2 * raw.rounds
