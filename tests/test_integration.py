"""Cross-module integration scenarios.

Each test is a miniature end-to-end story exercising several subsystems
together — the kind of flow a downstream user of the library would run.
"""

import numpy as np
import pytest

from repro import (
    Configuration,
    HsuHuangMatching,
    SynchronousMaximalIndependentSet,
    SynchronousMaximalMatching,
    cycle_graph,
    erdos_renyi_graph,
    random_geometric_graph,
    run_central,
    run_synchronized_central,
    run_synchronous,
)
from repro.adhoc import RandomWaypoint, StaticPlacement, run_until_stable, run_with_mobility
from repro.core.faults import (
    migrate_configuration,
    perturb_configuration,
    random_configuration,
)
from repro.graphs.mutations import apply_churn
from repro.graphs.properties import (
    greedy_mis_by_descending_id,
    is_maximal_matching,
    pointer_matching,
)
from repro.matching.classification import validate_transitions
from repro.matching.smm_vectorized import VectorizedSMM
from repro.matching.verify import verify_execution as verify_matching
from repro.mis.sis_vectorized import VectorizedSIS
from repro.mis.verify import verify_execution as verify_mis


class TestFaultToleranceLifecycle:
    """The paper's headline story: stabilize, get hit, re-stabilize."""

    def test_smm_survives_state_corruption(self):
        g = erdos_renyi_graph(24, 0.15, rng=1)
        smm = SynchronousMaximalMatching()
        ex = run_synchronous(smm, g)
        verify_matching(g, ex)
        # corrupt a third of the nodes
        corrupted = perturb_configuration(smm, g, ex.final, fraction=0.33, rng=2)
        ex2 = run_synchronous(smm, g, corrupted)
        verify_matching(g, ex2)
        assert ex2.rounds <= g.n + 1

    def test_sis_survives_repeated_churn(self):
        g = erdos_renyi_graph(20, 0.2, rng=3)
        sis = SynchronousMaximalIndependentSet()
        cfg = random_configuration(sis, g, rng=4)
        rng = np.random.default_rng(5)
        for _ in range(5):
            ex = run_synchronous(sis, g, cfg)
            verify_mis(g, ex, expect_greedy=True)
            g, _ = apply_churn(g, 2, rng)
            cfg = migrate_configuration(sis, g, g, ex.final)
        ex = run_synchronous(sis, g, cfg)
        verify_mis(g, ex, expect_greedy=True)

    def test_matching_recovery_is_local_for_small_faults(self):
        """Containment: corrupting one node touches few nodes during
        recovery."""
        g = cycle_graph(40)
        smm = SynchronousMaximalMatching()
        ex = run_synchronous(smm, g)
        corrupted = perturb_configuration(smm, g, ex.final, count=1, rng=7)
        ex2 = run_synchronous(smm, g, corrupted)
        verify_matching(g, ex2)
        assert len(ex2.moved_nodes()) <= 6


class TestEngineAgreement:
    """All engines must tell the same story on the same inputs."""

    def test_three_engines_same_sis_fixpoint(self):
        g = erdos_renyi_graph(18, 0.2, rng=6)
        sis = SynchronousMaximalIndependentSet()
        cfg = random_configuration(sis, g, rng=7)
        target = greedy_mis_by_descending_id(g)

        sync = run_synchronous(sis, g, cfg)
        central = run_central(sis, g, cfg, strategy="random", rng=8)
        vec = VectorizedSIS(g)
        vres = vec.run(cfg)

        for final_set in (
            {n for n, x in sync.final.items() if x == 1},
            {n for n, x in central.final.items() if x == 1},
            vec.independent_set(vres.final_x),
        ):
            assert final_set == target

    def test_vectorized_smm_agrees_with_reference_trace(self):
        g = erdos_renyi_graph(25, 0.15, rng=9)
        smm = SynchronousMaximalMatching()
        cfg = random_configuration(smm, g, rng=10)
        ref = run_synchronous(smm, g, cfg, record_history=True)
        validate_transitions(g, ref.history)
        vec = VectorizedSMM(g)
        res = vec.run(cfg)
        assert res.rounds == ref.rounds
        assert vec.decode(res.final_ptr) == ref.final


class TestBeaconRealization:
    """The beacon substrate realizes the synchronous model."""

    def test_adhoc_and_sync_engine_same_sis_answer(self):
        g, pos = random_geometric_graph(14, 0.42, rng=11, return_positions=True)
        sis = SynchronousMaximalIndependentSet()
        sync = run_synchronous(sis, g)
        res = run_until_stable(sis, StaticPlacement(pos), radius=0.42, rng=12)
        assert res.stabilized
        assert res.final == sync.final  # unique fixpoint, any schedule

    def test_adhoc_smm_maximal_even_with_loss(self):
        g, pos = random_geometric_graph(14, 0.42, rng=13, return_positions=True)
        smm = SynchronousMaximalMatching()
        res = run_until_stable(
            smm, StaticPlacement(pos), radius=0.42, rng=14, loss=0.15
        )
        assert res.stabilized
        assert is_maximal_matching(g, pointer_matching(res.final.as_dict()))

    def test_mobile_network_keeps_predicate_mostly_available(self):
        mob = RandomWaypoint(12, v_min=0.005, v_max=0.02, pause=4.0, rng=15)
        res = run_with_mobility(
            SynchronousMaximalIndependentSet(),
            mob,
            radius=0.55,
            horizon=80.0,
            rng=16,
        )
        assert res.availability > 0.5


class TestBaselineStory:
    """Section 3's comparison, end to end on one instance."""

    def test_smm_beats_synchronized_hsu_huang(self):
        g = erdos_renyi_graph(32, 0.12, rng=17)
        smm = SynchronousMaximalMatching()
        hh = HsuHuangMatching()
        totals = {"smm": 0, "hh": 0}
        for seed in range(5):
            cfg = random_configuration(smm, g, rng=seed)
            totals["smm"] += run_synchronous(smm, g, cfg).rounds
            totals["hh"] += run_synchronized_central(
                hh, g, cfg, priority="id", count_beacon_rounds=True
            ).rounds
        assert totals["hh"] > totals["smm"]


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None

    def test_quickstart_docstring_flow(self):
        """The README/quickstart snippet, verbatim semantics."""
        from repro import SynchronousMaximalMatching, erdos_renyi_graph, run_synchronous
        from repro.core.faults import random_configuration

        graph = erdos_renyi_graph(32, 0.15, rng=1)
        protocol = SynchronousMaximalMatching()
        start = random_configuration(protocol, graph, rng=2)
        execution = run_synchronous(protocol, graph, start)
        assert execution.stabilized and execution.rounds <= graph.n + 1
