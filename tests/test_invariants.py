"""Tests for invariant monitors."""

import pytest

from repro.core.executor import run_synchronous
from repro.core.invariants import (
    ClosureMonitor,
    HistoryMonitor,
    Monitor,
    PredicateMonitor,
    QuiescenceMonitor,
)
from repro.graphs.generators import path_graph
from repro.graphs.properties import is_maximal_independent_set
from repro.mis.sis import SynchronousMaximalIndependentSet

SIS = SynchronousMaximalIndependentSet()


def sis_stable(graph, config):
    return SIS.is_legitimate(graph, config)


class TestBaseMonitor:
    def test_hooks_are_noops(self):
        m = Monitor()
        m.on_start(path_graph(2), None)
        m.on_round(1, None)
        m.on_finish(None)


class TestHistoryMonitor:
    def test_records_initial_plus_rounds(self):
        g = path_graph(5)
        mon = HistoryMonitor()
        ex = run_synchronous(SIS, g, monitors=[mon])
        assert mon.graph is g
        assert len(mon.configurations) == ex.rounds + 1

    def test_reset_between_runs(self):
        g = path_graph(4)
        mon = HistoryMonitor()
        run_synchronous(SIS, g, monitors=[mon])
        first = len(mon.configurations)
        run_synchronous(SIS, g, monitors=[mon])
        assert len(mon.configurations) == first


class TestPredicateMonitor:
    def test_traces_values(self):
        g = path_graph(5)
        mon = PredicateMonitor(sis_stable, name="stable")
        ex = run_synchronous(SIS, g, monitors=[mon])
        assert len(mon.values) == ex.rounds + 1
        assert mon.values[-1] is True
        assert mon.values[0] is False  # all-zero start is not stable

    def test_require_raises_on_false(self):
        g = path_graph(5)
        mon = PredicateMonitor(sis_stable, name="stable", require=True)
        with pytest.raises(AssertionError, match="stable"):
            run_synchronous(SIS, g, monitors=[mon])

    def test_first_true_and_holds_from(self):
        g = path_graph(5)
        mon = PredicateMonitor(sis_stable)
        run_synchronous(SIS, g, monitors=[mon])
        ft = mon.first_true()
        assert ft is not None and ft > 0
        assert mon.holds_from() is not None

    def test_first_true_none_when_never(self):
        mon = PredicateMonitor(lambda g, c: False)
        run_synchronous(SIS, path_graph(3), monitors=[mon])
        assert mon.first_true() is None
        assert mon.holds_from() is None


class TestClosureMonitor:
    def test_sis_fixpoint_predicate_is_closed(self):
        g = path_graph(6)
        mon = ClosureMonitor(sis_stable, name="sis-fixpoint")
        run_synchronous(SIS, g, monitors=[mon])  # must not raise

    def test_mis_membership_not_closed_under_sis(self):
        """The documented subtlety: plain MIS-ness is NOT closed under
        SIS's rules — the protocol can move *through* a non-canonical
        MIS, transiently breaking it."""
        g = path_graph(4)
        # {0, 2} is an MIS but not the greedy one ({1, 3})
        non_canonical = {0: 1, 1: 0, 2: 1, 3: 0}

        def is_mis(graph, config):
            return is_maximal_independent_set(
                graph, {n for n, x in config.items() if x == 1}
            )

        mon = ClosureMonitor(is_mis, name="mis")
        with pytest.raises(AssertionError, match="closure"):
            run_synchronous(SIS, g, non_canonical, monitors=[mon])


class TestQuiescenceMonitor:
    def test_counts_changes(self):
        g = path_graph(5)
        mon = QuiescenceMonitor()
        ex = run_synchronous(SIS, g, monitors=[mon])
        assert len(mon.changed_per_round) == ex.rounds
        assert sum(mon.changed_per_round) == ex.moves
