"""Tests for the executable lemma checkers (Lemmas 1–10, Fig. 3)."""

import pytest
from hypothesis import given, settings

from repro.core.configuration import Configuration
from repro.core.executor import run_synchronous
from repro.core.faults import random_configuration
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.matching.lemmas import (
    Violation,
    check_all,
    check_figure_3,
    check_lemma_1,
    check_lemma_2,
    check_lemma_3,
    check_lemma_4,
    check_lemma_5,
    check_lemma_6,
    check_lemma_7,
    check_lemma_9,
    check_lemma_10,
)
from repro.matching.smm import SynchronousMaximalMatching

from conftest import graphs_with_pointers

SMM = SynchronousMaximalMatching()


def record(graph, config):
    ex = run_synchronous(SMM, graph, config, record_history=True)
    assert ex.stabilized
    return ex


class TestOnRealRuns:
    """Every lemma must hold on every recorded SMM run."""

    @settings(max_examples=40, deadline=None)
    @given(graphs_with_pointers())
    def test_check_all_empty(self, graph_and_config):
        g, cfg = graph_and_config
        ex = record(g, cfg)
        assert check_all(g, ex) == []

    def test_check_all_over_random_sweep(self, rng):
        for seed in range(5):
            g = erdos_renyi_graph(14, 0.25, rng=seed)
            cfg = random_configuration(SMM, g, rng)
            ex = record(g, cfg)
            assert check_all(g, ex) == []

    def test_requires_history(self):
        g = path_graph(4)
        ex = run_synchronous(SMM, g)  # no history recorded
        with pytest.raises(ValueError):
            check_all(g, ex)


class TestIndividualCheckers:
    """Each checker detects a hand-crafted violation of its lemma."""

    def test_lemma1_detects_unmatching(self):
        g = path_graph(2)
        matched = Configuration({0: 1, 1: 0})
        broken = Configuration({0: None, 1: None})
        violations = check_lemma_1(g, [matched, broken])
        assert len(violations) == 1
        assert violations[0].lemma == "Lemma 1"
        assert violations[0].time == 0

    def test_lemma2_detects_pm_not_clearing(self):
        # 2 -> 1 with 0 <-> 1 matched: node 2 is PM and must go to A0;
        # a history where it keeps pointing violates Lemma 2
        g = path_graph(3)
        pm = Configuration({0: 1, 1: 0, 2: 1})
        assert check_lemma_2(g, [pm, pm])

    def test_lemma3_detects_pp_not_clearing(self):
        # path 0-1-2-3: 1 -> 2, 2 -> 3, 3 null: nodes 1,2 in P; 1 is PP
        g = path_graph(4)
        pp = Configuration({0: None, 1: 2, 2: 3, 3: None})
        assert check_lemma_3(g, [pp, pp])

    def test_lemma4_detects_pa_not_resolving(self):
        g = path_graph(3)
        pa = Configuration({0: 1, 1: None, 2: None})  # 0 -> null 1
        assert check_lemma_4(g, [pa, pa])

    def test_lemma5_detects_a1_not_matching(self):
        g = path_graph(3)
        pa = Configuration({0: 1, 1: None, 2: None})  # node 1 is A1
        assert check_lemma_5(g, [pa, pa])

    def test_lemma6_detects_a0_to_a1(self):
        g = path_graph(4)
        a0 = Configuration({0: None, 1: 2, 2: 1, 3: None})  # 0, 3 in A0
        # 3 suddenly has a suitor (2 -> 3) while staying null: A0 -> A1
        a1 = Configuration({0: None, 1: 2, 2: 3, 3: None})
        assert check_lemma_6(g, [a0, a1])

    def test_lemma7_detects_transients_after_t0(self):
        g = path_graph(3)
        pa = Configuration({0: 1, 1: None, 2: None})
        violations = check_lemma_7(g, [pa, pa, pa])
        assert {v.time for v in violations} == {1, 2}

    def test_lemma7_allows_transients_at_t0(self):
        g = path_graph(3)
        pa = Configuration({0: 1, 1: None, 2: None})
        ok = Configuration({0: 1, 1: 0, 2: None})
        assert check_lemma_7(g, [pa, ok]) == []

    def test_lemma9_detects_a0_move_without_growth(self):
        # fake history: A0 node 0 "moves" (per move_log) but M stagnates
        g = path_graph(2)
        a = Configuration({0: None, 1: None})
        move_log = [{0: "R2"}, {0: "R3"}, {0: "R2"}]
        history = [a, a, a, a]
        assert check_lemma_9(g, history, move_log)

    def test_lemma10_detects_two_active_rounds_without_growth(self):
        g = path_graph(2)
        a = Configuration({0: None, 1: None})
        move_log = [{0: "R2"}, {0: "R3"}, {0: "R2"}]
        history = [a, a, a, a]
        assert check_lemma_10(g, history, move_log)

    def test_figure3_detects_illegal_arrow(self):
        g = path_graph(2)
        matched = Configuration({0: 1, 1: 0})
        broken = Configuration({0: None, 1: None})
        violations = check_figure_3(g, [matched, broken])
        assert len(violations) == 2  # both nodes did M -> A0

    def test_violation_str(self):
        v = Violation("Lemma 1", 3, "nodes unmatched: [5]")
        assert "Lemma 1" in str(v) and "t=3" in str(v)
