"""Equivalence tests: vectorized Luby kernel vs the reference engine.

Both sides draw per-node variates as ``rng.random(n)`` assigned to
nodes in ascending-id order, so two runs seeded identically must agree
bit for bit — rounds, trajectories and final sets.
"""

import numpy as np
import pytest

from repro.core.executor import run_synchronous
from repro.core.faults import random_configuration
from repro.errors import StabilizationTimeout
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.graphs.properties import is_maximal_independent_set
from repro.mis.luby_vectorized import VectorizedLuby
from repro.mis.variants import LubyStyleMIS

LUBY = LubyStyleMIS()


class TestExactEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_rounds_and_final_match_engine(self, seed):
        g = erdos_renyi_graph(16, 0.25, rng=seed)
        cfg = random_configuration(LUBY, g, rng=seed + 100)
        ref = run_synchronous(
            LUBY, g, cfg, rng=np.random.default_rng(seed), max_rounds=500
        )
        vec = VectorizedLuby(g)
        res = vec.run(cfg, rng=np.random.default_rng(seed), max_rounds=500)
        assert ref.stabilized and res.stabilized
        assert res.rounds == ref.rounds
        assert vec.decode(res.final_x) == ref.final
        assert res.moves_by_rule == ref.moves_by_rule

    def test_trajectory_matches_round_by_round(self):
        g = cycle_graph(12)
        cfg = {i: 0 for i in g.nodes}
        ref = run_synchronous(
            LUBY,
            g,
            cfg,
            rng=np.random.default_rng(7),
            max_rounds=500,
            record_history=True,
        )
        vec = VectorizedLuby(g)
        gen = np.random.default_rng(7)
        x = vec.encode(cfg)
        for expected in ref.history[1:]:
            draws = gen.random(g.n)
            x = vec.step(x, draws)
            assert vec.decode(x) == expected


class TestKernelStandalone:
    def test_converges_to_mis_on_random_graphs(self):
        for seed in range(6):
            g = erdos_renyi_graph(30, 0.15, rng=seed)
            vec = VectorizedLuby(g)
            res = vec.run(rng=seed, max_rounds=2000)
            assert res.stabilized
            s = vec.independent_set(res.final_x)
            assert is_maximal_independent_set(g, s)

    def test_resolves_all_ones_start(self):
        g = cycle_graph(20)
        vec = VectorizedLuby(g)
        res = vec.run({i: 1 for i in g.nodes}, rng=3, max_rounds=2000)
        assert res.stabilized
        assert is_maximal_independent_set(g, vec.independent_set(res.final_x))

    def test_quiescence_detection(self):
        g = path_graph(4)
        vec = VectorizedLuby(g)
        # {1, 3} is an MIS: quiescent
        assert vec.is_quiescent(vec.encode({0: 0, 1: 1, 2: 0, 3: 1}))
        # all-zero: not dominated
        assert not vec.is_quiescent(vec.encode({i: 0 for i in g.nodes}))
        # adjacent in-pair: not independent
        assert not vec.is_quiescent(vec.encode({0: 1, 1: 1, 2: 0, 3: 1}))

    def test_stable_start_zero_rounds(self):
        g = path_graph(4)
        vec = VectorizedLuby(g)
        res = vec.run({0: 0, 1: 1, 2: 0, 3: 1}, rng=1)
        assert res.stabilized and res.rounds == 0 and res.moves == 0

    def test_timeout(self):
        g = path_graph(10)
        vec = VectorizedLuby(g)
        res = vec.run(max_rounds=0)
        assert not res.stabilized
        with pytest.raises(StabilizationTimeout):
            vec.run(max_rounds=0, raise_on_timeout=True)

    def test_fast_on_long_paths(self):
        """The randomized comparator's selling point: expected O(log n)
        rounds where SIS needs Θ(n)."""
        g = path_graph(256)
        vec = VectorizedLuby(g)
        res = vec.run(rng=5, max_rounds=2000)
        assert res.stabilized
        assert res.rounds < 64  # n/4, comfortably sublinear in practice

    def test_scales(self):
        g = erdos_renyi_graph(2000, 3.0 * np.log(2000) / 2000, rng=9)
        vec = VectorizedLuby(g)
        res = vec.run(rng=10, max_rounds=5000)
        assert res.stabilized
        assert is_maximal_independent_set(g, vec.independent_set(res.final_x))
