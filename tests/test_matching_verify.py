"""Tests for matching execution verification."""

import pytest

from repro.core.executor import run_synchronous
from repro.graphs.generators import cycle_graph, path_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.variants import ArbitraryChoiceSMM, clockwise_chooser
from repro.matching.verify import (
    is_stable_configuration,
    matching_of,
    verify_execution,
)

SMM = SynchronousMaximalMatching()


class TestMatchingOf:
    def test_extracts_reciprocated(self):
        assert matching_of({0: 1, 1: 0, 2: None}) == {(0, 1)}

    def test_ignores_unreciprocated(self):
        assert matching_of({0: 1, 1: 2, 2: 1}) == {(1, 2)}


class TestIsStableConfiguration:
    def test_stable(self):
        g = cycle_graph(4)
        assert is_stable_configuration(g, {0: 1, 1: 0, 2: 3, 3: 2})

    def test_unmatched_with_pointer_unstable(self):
        g = path_graph(3)
        assert not is_stable_configuration(g, {0: 1, 1: 0, 2: 1})

    def test_non_maximal_unstable(self):
        g = path_graph(4)
        assert not is_stable_configuration(g, {0: None, 1: None, 2: None, 3: None})


class TestVerifyExecution:
    def test_accepts_good_run(self):
        g = cycle_graph(6)
        ex = run_synchronous(SMM, g)
        m = verify_execution(g, ex)
        assert len(m) == 3

    def test_rejects_unstabilized_run(self):
        g = cycle_graph(4)
        bad = ArbitraryChoiceSMM(clockwise_chooser(4))
        ex = run_synchronous(bad, g, {i: None for i in g.nodes}, max_rounds=10)
        with pytest.raises(AssertionError, match="did not stabilize"):
            verify_execution(g, ex)

    def test_rejects_tampered_final(self):
        g = path_graph(4)
        ex = run_synchronous(SMM, g)
        # tamper: drop the matching entirely
        ex.final = ex.final.updated({n: None for n in g.nodes})
        ex.legitimate = True  # even a lying flag doesn't save it
        with pytest.raises(AssertionError):
            verify_execution(g, ex)

    def test_rejects_lying_legitimacy_flag(self):
        g = path_graph(2)
        ex = run_synchronous(SMM, g)
        ex.legitimate = False
        with pytest.raises(AssertionError, match="not legitimate"):
            verify_execution(g, ex)
