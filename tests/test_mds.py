"""Tests for the minimal dominating set extension."""

import pytest

from repro.core.configuration import Configuration
from repro.core.executor import run_central, run_synchronous
from repro.core.faults import random_configuration
from repro.core.transform import run_synchronized_central
from repro.domination.mds import MinimalDominatingSet, is_minimal_dominating_set
from repro.errors import InvalidConfigurationError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)

MDS = MinimalDominatingSet()


class TestMinimalityChecker:
    def test_star_hub_minimal(self):
        g = star_graph(6)
        assert is_minimal_dominating_set(g, {0})

    def test_hub_plus_leaf_not_minimal(self):
        g = star_graph(6)
        assert not is_minimal_dominating_set(g, {0, 1})

    def test_all_leaves_minimal(self):
        """All leaves dominate the star and no leaf is redundant (each
        dominates itself only)."""
        g = star_graph(5)
        assert is_minimal_dominating_set(g, {1, 2, 3, 4})

    def test_non_dominating_rejected(self):
        g = path_graph(5)
        assert not is_minimal_dominating_set(g, {0})

    def test_c6_alternating(self):
        g = cycle_graph(6)
        assert is_minimal_dominating_set(g, {0, 3})

    def test_complete_graph_singleton(self):
        g = complete_graph(5)
        assert is_minimal_dominating_set(g, {2})
        assert not is_minimal_dominating_set(g, {1, 2})


class TestProtocolBasics:
    def test_initial_state(self):
        assert MDS.initial_state(0, cycle_graph(4)) == (0, 0)

    def test_random_state_valid(self, rng):
        g = cycle_graph(6)
        for _ in range(20):
            MDS.validate_state(0, g, MDS.random_state(0, g, rng))

    @pytest.mark.parametrize(
        "bad", [(2, 0), (0, -1), (0, 99), "x", (1,), None]
    )
    def test_validate_rejects(self, bad):
        with pytest.raises(InvalidConfigurationError):
            MDS.validate_state(0, cycle_graph(4), bad)

    def test_members_helper(self):
        cfg = {0: (1, 0), 1: (0, 1), 2: (1, 0)}
        assert MDS.members(cfg) == {0, 2}

    def test_legitimate_requires_correct_counts(self):
        g = path_graph(3)
        # correct set {1} but node 0's count is wrong
        cfg = {0: (0, 0), 1: (1, 0), 2: (0, 1)}
        assert not MDS.is_legitimate(g, cfg)
        cfg_ok = {0: (0, 1), 1: (1, 0), 2: (0, 1)}
        assert MDS.is_legitimate(g, cfg_ok)


class TestConvergence:
    def test_central_daemon(self, rng):
        for seed in range(5):
            g = erdos_renyi_graph(12, 0.3, rng=seed)
            cfg = random_configuration(MDS, g, rng)
            ex = run_central(MDS, g, cfg, strategy="random", rng=rng)
            assert ex.stabilized
            assert is_minimal_dominating_set(g, MDS.members(ex.final))

    @pytest.mark.parametrize("priority", ["id", "random"])
    def test_refined_synchronous(self, priority, rng):
        g = erdos_renyi_graph(14, 0.25, rng=2)
        cfg = random_configuration(MDS, g, rng)
        ex = run_synchronized_central(MDS, g, cfg, priority=priority, rng=rng)
        assert ex.stabilized
        assert is_minimal_dominating_set(g, MDS.members(ex.final))

    def test_clean_start_everyone_enters_then_prunes(self, rng):
        g = cycle_graph(8)
        ex = run_central(MDS, g, strategy="random", rng=rng)
        assert ex.stabilized
        members = MDS.members(ex.final)
        assert is_minimal_dominating_set(g, members)

    def test_raw_synchronous_livelocks_on_symmetry(self):
        g = cycle_graph(6)
        # everyone in the set with counts claiming two dominators:
        # all redundant, all leave together, all undominated, all
        # re-enter together ... (after count repair rounds)
        cfg = Configuration({i: (1, 2) for i in g.nodes})
        ex = run_synchronous(MDS, g, cfg, max_rounds=80)
        assert not ex.stabilized

    def test_rule_priority_repairs_counts_first(self):
        """RC outranks R1/R2: with a wrong count the node repairs it
        before any membership move."""
        g = path_graph(3)
        from repro.core.executor import build_view

        # node 1: count says 0 dominators but both neighbours are in
        view = build_view(MDS, g, {0: (1, 0), 1: (0, 0), 2: (1, 0)}, 1)
        rule = MDS.enabled_rule(view)
        assert rule.name == "RC"
        assert rule.fire(view) == (0, 2)
