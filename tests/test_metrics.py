"""Tests for :mod:`repro.observability.metrics` — the process-local
registry, its Prometheus/JSON exports, deterministic merges, and the
sweep instrumentation the trial runner records.

The determinism contract: counter-valued exports are byte-identical
for every ``--jobs`` value (and, for the protocol-accounting families,
across backends too — the cross-backend half is pinned in
``test_engine_equivalence.py``).
"""

from __future__ import annotations

import json

import pytest

from repro.engine import fallback_backend
from repro.graphs.generators import cycle_graph
from repro.observability import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    current_registry,
    exponential_buckets,
    use_registry,
)
from repro.parallel.trial_runner import TrialSpec, run_trials


class TestPrimitives:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total", "help")
        counter.inc(a="x")
        counter.inc(2, a="x")
        counter.inc(a="y")
        data = reg.to_dict()["c_total"]
        assert data["type"] == "counter"
        assert data["samples"] == [
            {"labels": {"a": "x"}, "value": 3},
            {"labels": {"a": "y"}, "value": 1},
        ]

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(5)
        reg.gauge("g").set(2)
        assert reg.to_dict()["g"]["samples"][0]["value"] == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")

    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        assert len(DEFAULT_BUCKETS) == 16

    def test_histogram_observe_and_overflow(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        [sample] = reg.to_dict()["h"]["samples"]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(105.0)
        # 100.0 is above the largest bound: only in count/sum (+Inf)
        assert sample["buckets"] == [1, 1, 1]


class TestExposition:
    def test_format(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", "Runs").inc(3, backend="ref")
        reg.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0)).observe(
            0.05
        )
        text = reg.exposition()
        assert "# HELP runs_total Runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{backend="ref"} 3' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text  # cumulative
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.05" in text
        assert "lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(path='a"b\\c')
        assert 'path="a\\"b\\\\c"' in reg.exposition()

    def test_every_line_parses(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "A").inc(2, x="1")
        reg.gauge("b", "B").set(1.5)
        reg.histogram("c_seconds", "C", buckets=(1.0,)).observe(0.5)
        for line in reg.exposition().splitlines():
            if line.startswith("#"):
                assert line.split(" ", 2)[0] in ("#",) or True
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # must parse
            assert name_part[0].isalpha()

    def test_kinds_filter(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.histogram("b_seconds").observe(0.1)
        counters_only = reg.exposition(kinds=("counter",))
        assert "a_total" in counters_only
        assert "b_seconds" not in counters_only
        assert "b_seconds" in json.loads(reg.to_json())


class TestMerge:
    def test_counters_add_gauges_max_histograms_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(5)
        b.gauge("g").set(2)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(0.7)
        merged = a.merge(b)
        assert merged is a
        data = merged.to_dict()
        assert data["c"]["samples"][0]["value"] == 5
        assert data["g"]["samples"][0]["value"] == 5
        assert data["h"]["samples"][0]["count"] == 2

    def test_merge_is_order_independent_for_counters(self):
        def build(values):
            reg = MetricsRegistry()
            for v in values:
                reg.counter("c").inc(v, k=str(v % 2))
            return reg

        left = build([1, 2, 3]).merge(build([4, 5]))
        right = build([4, 5]).merge(build([1, 2, 3]))
        assert left.exposition() == right.exposition()

    def test_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)


class TestAmbientRegistry:
    def test_default_none_and_restore(self):
        assert current_registry() is None
        reg = MetricsRegistry()
        with use_registry(reg):
            assert current_registry() is reg
        assert current_registry() is None


class TestSweepInstrumentation:
    def _sweep(self, jobs):
        specs = [
            TrialSpec("smm", cycle_graph(10), seed=i, backend="auto")
            for i in range(4)
        ]
        reg = MetricsRegistry()
        with use_registry(reg):
            results = run_trials(specs, jobs=jobs)
        return reg, results

    def test_run_families_recorded(self):
        reg, results = self._sweep(jobs=1)
        data = reg.to_dict()
        runs = data["repro_runs_total"]["samples"]
        assert sum(s["value"] for s in runs) == 4
        rounds = data["repro_rounds_total"]["samples"]
        assert sum(s["value"] for s in rounds) == sum(
            r.rounds for r in results
        )
        assert data["repro_trials_started_total"]["samples"][0]["value"] == 4
        # protocol accounting carries no backend label
        assert all(
            "backend" not in s["labels"]
            for s in data["repro_rounds_total"]["samples"]
        )
        assert all(
            "backend" not in s["labels"]
            for s in data["repro_moves_total"]["samples"]
        )

    def test_latency_histogram_collected_without_telemetry_flag(self):
        reg, results = self._sweep(jobs=1)
        [sample] = reg.to_dict()["repro_trial_latency_seconds"]["samples"]
        assert sample["count"] == 4
        # ... and the results stay bit-identical to an unmetered run
        assert all(r.telemetry is None for r in results)

    def test_counter_export_identical_across_jobs(self):
        reg1, _ = self._sweep(jobs=1)
        reg4, _ = self._sweep(jobs=4)
        assert reg1.exposition(kinds=("counter",)) == reg4.exposition(
            kinds=("counter",)
        )
        assert reg1.to_json(kinds=("counter",)) == reg4.to_json(
            kinds=("counter",)
        )

    def test_no_registry_no_overhead_path(self):
        specs = [TrialSpec("smm", cycle_graph(6), seed=0, backend="auto")]
        [result] = run_trials(specs, jobs=1)
        assert result.telemetry is None

    def test_fallback_counter(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            degraded = fallback_backend(
                "smm", "synchronous", "vectorized", record_history=True
            )
        assert degraded == "reference"
        [sample] = reg.to_dict()["repro_backend_fallbacks_total"]["samples"]
        assert sample["labels"] == {
            "protocol": "smm",
            "requested": "vectorized",
        }
        assert sample["value"] == 1

    def test_failed_trials_counted(self, tmp_path):
        specs = [
            TrialSpec("smm", cycle_graph(8), seed=0, backend="auto"),
            TrialSpec(
                "nope-no-such-protocol", cycle_graph(8), seed=1, backend="auto"
            ),
        ]
        reg = MetricsRegistry()
        with use_registry(reg):
            results = run_trials(specs, jobs=1, retries=0, timeout=30.0)
        data = reg.to_dict()
        [sample] = data["repro_trial_failures_total"]["samples"]
        assert sample["value"] == 1
        assert results[1].error_type  # FailedTrial slot


class TestCLIMetrics:
    def test_run_with_metrics_writes_both_exports(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "metrics.prom"
        code = main(["run", "E1", "--quick", f"--metrics={path}"])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote metrics" in out
        text = path.read_text(encoding="utf-8")
        assert "repro_runs_total" in text
        sibling = tmp_path / "metrics.json"
        data = json.loads(sibling.read_text(encoding="utf-8"))
        assert data["repro_runs_total"]["type"] == "counter"
