"""Tests for the MIS comparators (central-daemon MIS, Luby-style)."""

import pytest

from repro.core.configuration import Configuration
from repro.core.executor import run_central, run_synchronous
from repro.core.faults import random_configuration
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.graphs.properties import is_independent_set
from repro.mis.variants import CentralDaemonMIS, LubyStyleMIS
from repro.mis.verify import independent_set_of, verify_execution

CENTRAL = CentralDaemonMIS()
LUBY = LubyStyleMIS()


class TestCentralDaemonMIS:
    def test_converges_under_central_daemon(self, rng):
        for seed in range(5):
            g = erdos_renyi_graph(12, 0.3, rng=seed)
            cfg = random_configuration(CENTRAL, g, rng)
            ex = run_central(CENTRAL, g, cfg, strategy="random", rng=rng)
            verify_execution(g, ex)

    def test_livelocks_under_synchronous_daemon(self):
        """The id-free rules oscillate on any symmetric start — the
        reason SIS compares ids."""
        g = path_graph(2)
        ex = run_synchronous(
            CENTRAL, g, Configuration({0: 0, 1: 0}), max_rounds=50
        )
        assert not ex.stabilized  # 00 -> 11 -> 00 -> ...

    def test_livelock_on_cycles_too(self):
        g = cycle_graph(6)
        ex = run_synchronous(
            CENTRAL, g, Configuration({i: 0 for i in g.nodes}), max_rounds=60
        )
        assert not ex.stabilized

    def test_any_mis_is_a_fixpoint(self):
        """Unlike SIS, the id-free protocol accepts *any* MIS."""
        g = path_graph(4)
        from repro.core.executor import enabled_nodes

        for mis in ({0, 2}, {0, 3}, {1, 3}):
            cfg = {i: int(i in mis) for i in g.nodes}
            assert enabled_nodes(CENTRAL, g, cfg) == ()
            assert CENTRAL.is_legitimate(g, cfg)


class TestLubyStyleMIS:
    def test_uses_randomness(self):
        assert LubyStyleMIS.uses_randomness is True

    def test_converges_synchronously(self, rng):
        for seed in range(5):
            g = erdos_renyi_graph(14, 0.25, rng=seed)
            cfg = random_configuration(LUBY, g, rng)
            ex = run_synchronous(LUBY, g, cfg, rng=rng, max_rounds=500)
            verify_execution(g, ex)

    def test_breaks_symmetry_on_even_cycles(self, rng):
        """The exact instance that livelocks the deterministic id-free
        protocol."""
        g = cycle_graph(8)
        ex = run_synchronous(
            LUBY, g, {i: 0 for i in g.nodes}, rng=rng, max_rounds=500
        )
        verify_execution(g, ex)

    def test_independence_never_violated_from_clean_start(self, rng):
        """Two adjacent nodes can never enter in the same round, so from
        an independent configuration independence is invariant."""
        g = erdos_renyi_graph(12, 0.3, rng=3)
        ex = run_synchronous(
            LUBY,
            g,
            {i: 0 for i in g.nodes},
            rng=rng,
            max_rounds=500,
            record_history=True,
        )
        for config in ex.history:
            assert is_independent_set(g, independent_set_of(config))

    def test_faster_than_sis_on_long_paths(self, rng):
        """The classical trade: Luby-style randomization beats SIS's
        linear cascade on path graphs (expected polylog vs Θ(n))."""
        from repro.mis.sis import SynchronousMaximalIndependentSet

        g = path_graph(64)
        sis_rounds = run_synchronous(
            SynchronousMaximalIndependentSet(), g
        ).rounds
        luby_rounds = run_synchronous(
            LUBY, g, {i: 0 for i in g.nodes}, rng=rng, max_rounds=500
        ).rounds
        assert luby_rounds < sis_rounds

    def test_resolves_initial_conflicts(self, rng):
        """From the all-ones start (maximally conflicted) the protocol
        still converges to an MIS."""
        g = cycle_graph(10)
        ex = run_synchronous(
            LUBY, g, {i: 1 for i in g.nodes}, rng=rng, max_rounds=500
        )
        verify_execution(g, ex)
