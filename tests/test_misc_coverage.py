"""Targeted tests for surfaces the main suites exercise only
indirectly."""

import numpy as np
import pytest

from repro.core.protocol import View
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.mutations import ChurnEvent
from repro.matching.smm import (
    MatchingProtocolBase,
    max_id_chooser,
    min_id_chooser,
    random_chooser,
)


class TestRandomChooser:
    def test_maps_variate_to_candidate(self):
        v = View(node=0, state=None, neighbor_states={}, rand=0.0)
        assert random_chooser(v, (3, 5, 9)) == 3
        v = View(node=0, state=None, neighbor_states={}, rand=0.99)
        assert random_chooser(v, (3, 5, 9)) == 9

    def test_midpoint(self):
        v = View(node=0, state=None, neighbor_states={}, rand=0.5)
        assert random_chooser(v, (3, 5, 9)) == 5

    def test_rand_one_clamped(self):
        v = View(node=0, state=None, neighbor_states={}, rand=1.0)
        assert random_chooser(v, (3, 5)) == 5


class TestMatchingProtocolBase:
    def test_direct_instantiation_with_custom_choosers(self):
        from repro.core.executor import run_synchronous
        from repro.matching.verify import verify_execution

        proto = MatchingProtocolBase(
            accept_chooser=max_id_chooser, propose_chooser=min_id_chooser
        )
        g = cycle_graph(8)
        ex = run_synchronous(proto, g)
        verify_execution(g, ex)

    def test_chooser_returning_non_candidate_rejected(self):
        from repro.errors import ProtocolError

        proto = MatchingProtocolBase(propose_chooser=lambda v, c: 999)
        g = path_graph(3)
        from repro.core.executor import run_synchronous

        with pytest.raises(ProtocolError):
            run_synchronous(proto, g)


class TestChurnEvent:
    def test_fields_default_empty(self):
        e = ChurnEvent("add", added=((0, 1),))
        assert e.kind == "add"
        assert e.added == ((0, 1),)
        assert e.removed == ()

    def test_frozen(self):
        e = ChurnEvent("remove", removed=((0, 1),))
        with pytest.raises(AttributeError):
            e.kind = "add"


class TestSerializeDictLevel:
    def test_execution_to_dict_keys(self):
        from repro.analysis.serialize import execution_to_dict
        from repro.core.executor import run_synchronous
        from repro.mis.sis import SynchronousMaximalIndependentSet

        ex = run_synchronous(SynchronousMaximalIndependentSet(), path_graph(4))
        d = execution_to_dict(ex)
        assert set(d) >= {
            "protocol",
            "daemon",
            "stabilized",
            "rounds",
            "moves",
            "initial",
            "final",
            "move_log",
        }

    def test_result_to_dict(self):
        from repro.analysis.serialize import result_to_dict
        from repro.experiments.common import ExperimentResult

        r = ExperimentResult("EX", "a", columns=["x"])
        r.add(x=1)
        d = result_to_dict(r)
        assert d["rows"] == [{"x": 1}]


class TestContentionExperimentQuick:
    def test_run_contention_small(self):
        from repro.experiments.e11_ablations import run_contention

        r = run_contention(
            n=10, windows=(0.0, 0.02), jitters=(0.2,), trials=2, seed=5
        )
        assert len(r.rows) == 4  # 2 protocols x 2 windows
        assert all(row["all_stabilized"] for row in r.rows)


class TestCliCommandFunctions:
    def test_cmd_list_direct(self, capsys):
        from repro.cli import cmd_list

        assert cmd_list() == 0
        assert "E12" in capsys.readouterr().out

    def test_cmd_run_direct(self, capsys):
        from repro.cli import cmd_run

        assert cmd_run(["E10"], quick=True) == 0
        assert "[E10]" in capsys.readouterr().out
