"""Tests for topology churn operators."""

import pytest

from repro.errors import GraphError, NotConnectedError
from repro.graphs.generators import complete_graph, cycle_graph, path_graph, random_tree
from repro.graphs.mutations import (
    add_random_edge,
    apply_churn,
    edge_difference,
    remove_random_edge,
    rewire_random_edge,
)


class TestAddRandomEdge:
    def test_adds_one_edge(self):
        g = cycle_graph(6)
        g2, e = add_random_edge(g, rng=1)
        assert g2.m == g.m + 1
        assert e in g2.edges and e not in g.edges

    def test_complete_graph_rejected(self):
        with pytest.raises(GraphError):
            add_random_edge(complete_graph(4), rng=1)

    def test_node_set_preserved(self):
        g = cycle_graph(6)
        g2, _ = add_random_edge(g, rng=1)
        assert g2.nodes == g.nodes


class TestRemoveRandomEdge:
    def test_removes_one_edge(self):
        g = complete_graph(5)
        g2, e = remove_random_edge(g, rng=1)
        assert g2.m == g.m - 1 and e not in g2.edges

    def test_keeps_connected(self):
        g = cycle_graph(8)
        for seed in range(5):
            g2, _ = remove_random_edge(g, rng=seed)
            assert g2.is_connected()

    def test_tree_has_no_removable_edges(self):
        g = random_tree(8, rng=1)
        with pytest.raises(NotConnectedError):
            remove_random_edge(g, rng=1)

    def test_tree_removable_when_disconnect_allowed(self):
        g = random_tree(8, rng=1)
        g2, _ = remove_random_edge(g, rng=1, keep_connected=False)
        assert not g2.is_connected()


class TestRewire:
    def test_preserves_edge_count(self):
        g = cycle_graph(8)
        g2, removed, added = rewire_random_edge(g, rng=2)
        assert g2.m == g.m
        assert removed not in g2.edges
        assert added in g2.edges
        assert g2.is_connected()


class TestApplyChurn:
    def test_event_count(self):
        g = cycle_graph(10)
        g2, events = apply_churn(g, 5, rng=3)
        assert len(events) == 5
        assert g2.is_connected()

    def test_zero_churn_identity(self):
        g = cycle_graph(6)
        g2, events = apply_churn(g, 0, rng=1)
        assert g2 == g and events == []

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            apply_churn(cycle_graph(6), -1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(GraphError):
            apply_churn(cycle_graph(6), 1, kinds=("teleport",))

    def test_add_only(self):
        g = path_graph(6)
        g2, events = apply_churn(g, 3, rng=4, kinds=("add",))
        assert g2.m == g.m + 3
        assert all(e.kind == "add" for e in events)

    def test_stops_when_impossible(self):
        g = complete_graph(4)
        # only "add" allowed but the graph is complete -> stops early
        g2, events = apply_churn(g, 3, rng=4, kinds=("add",))
        assert events == [] and g2 == g

    def test_reproducible(self):
        g = cycle_graph(10)
        a, ea = apply_churn(g, 4, rng=9)
        b, eb = apply_churn(g, 4, rng=9)
        assert a == b and ea == eb


class TestEdgeDifference:
    def test_basic(self):
        g = cycle_graph(5)
        g2 = g.with_edges(add=[(0, 2)], remove=[(0, 1)])
        created, destroyed = edge_difference(g, g2)
        assert created == {(0, 2)}
        assert destroyed == {(0, 1)}

    def test_mismatched_nodes_rejected(self):
        with pytest.raises(GraphError):
            edge_difference(cycle_graph(5), cycle_graph(6))
