"""Tests for :mod:`repro.observability` — backend-independent telemetry.

The contract: ``telemetry=True`` anywhere a run is configured attaches
one :class:`RunTelemetry` record whose counter fields agree exactly with
the owning result, whose census (for pointer-matching protocols) starts
at the initial configuration, and which survives JSON round-trips.
Cross-backend counter identity lives in ``test_engine_equivalence.py``;
this file pins the reference semantics and the plumbing around them
(sinks, aggregation, serialization, the CLI flag).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.serialize import execution_from_json, execution_to_json
from repro.core.executor import run_central, run_distributed, run_synchronous
from repro.core.transform import run_synchronized_central
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.matching.hsu_huang import HsuHuangMatching
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.observability import (
    CENSUS_KEYS,
    RunTelemetry,
    TelemetrySink,
    census_of,
    merge_telemetry,
    wants_census,
)

SMM = SynchronousMaximalMatching()
SIS = SynchronousMaximalIndependentSet()


class TestRunTelemetryRecord:
    def _sample(self):
        ex = run_synchronous(SMM, erdos_renyi_graph(10, 0.3, rng=2), telemetry=True)
        assert ex.telemetry is not None
        return ex

    def test_counters_agree_with_result(self):
        ex = self._sample()
        t = ex.telemetry
        assert t.protocol == SMM.name
        assert t.daemon == "synchronous"
        assert t.backend == "reference"
        assert t.rounds == ex.rounds == len(t.per_round_moves)
        assert t.moves == ex.moves
        assert t.moves_by_rule == dict(ex.moves_by_rule)
        per_round_totals = {name: 0 for name in SMM.rule_names()}
        for entry in t.per_round_moves:
            assert set(entry) == set(SMM.rule_names())
            for name, count in entry.items():
                per_round_totals[name] += count
        assert per_round_totals == t.moves_by_rule

    def test_census_spans_run_from_initial(self):
        graph = erdos_renyi_graph(10, 0.3, rng=2)
        ex = run_synchronous(SMM, graph, telemetry=True)
        census = ex.telemetry.node_type_census
        assert census is not None
        assert len(census) == ex.rounds + 1
        assert census[0] == census_of(graph, ex.initial)
        assert census[-1] == census_of(graph, ex.final)
        for entry in census:
            assert tuple(entry) == CENSUS_KEYS
            assert sum(entry.values()) == graph.n

    def test_non_matching_protocol_has_no_census(self):
        ex = run_synchronous(SIS, cycle_graph(8), telemetry=True)
        assert not wants_census(SIS) and wants_census(SMM)
        assert ex.telemetry.node_type_census is None

    def test_off_by_default(self):
        assert run_synchronous(SMM, cycle_graph(6)).telemetry is None

    def test_timings_cover_all_phases(self):
        t = self._sample().telemetry
        assert set(t.timings) == {"setup", "rounds", "finalize"}
        assert all(v >= 0.0 for v in t.timings.values())

    def test_json_roundtrip(self):
        t = self._sample().telemetry
        clone = RunTelemetry.from_json(t.to_json())
        assert clone == t
        assert RunTelemetry.from_dict(json.loads(json.dumps(t.to_dict()))) == t


class TestOtherDaemons:
    def test_central_rounds_equal_moves(self):
        ex = run_central(SMM, cycle_graph(7), strategy="random", rng=4, telemetry=True)
        t = ex.telemetry
        assert t.daemon == ex.daemon
        assert t.rounds == ex.rounds == ex.moves
        assert all(sum(entry.values()) == 1 for entry in t.per_round_moves)
        assert len(t.node_type_census) == ex.rounds + 1

    def test_distributed(self):
        ex = run_distributed(
            SIS, cycle_graph(9), rng=3, activation_probability=0.5, telemetry=True
        )
        t = ex.telemetry
        assert t.rounds == ex.rounds == len(t.per_round_moves)
        assert t.moves == ex.moves

    def test_synchronized_central(self):
        hh = HsuHuangMatching()
        ex = run_synchronized_central(hh, path_graph(6), priority="id", telemetry=True)
        t = ex.telemetry
        assert ex.stabilized
        assert t.rounds == len(t.per_round_moves)
        assert t.moves == ex.moves
        # Hsu-Huang keeps pointer states, so the Fig. 2 census applies
        assert t.node_type_census is not None
        assert len(t.node_type_census) == t.rounds + 1


class TestSink:
    def test_write_and_read(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = TelemetrySink(path)
        sink.write({"a": 1})
        sink.write_many([{"b": 2}, {"c": 3}])
        assert TelemetrySink.read(path) == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_telemetry_record_through_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        ex = run_synchronous(SMM, cycle_graph(8), telemetry=True)
        TelemetrySink(path).write(ex.telemetry.to_dict())
        [record] = TelemetrySink.read(path)
        assert RunTelemetry.from_dict(record) == ex.telemetry

    def test_single_handle_held_across_writes(self, tmp_path, monkeypatch):
        import builtins

        path = tmp_path / "t.jsonl"
        sink = TelemetrySink(path)
        opens = []
        real_open = builtins.open

        def counting_open(file, *args, **kwargs):
            if str(file) == str(path):
                opens.append(file)
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", counting_open)
        for i in range(5):
            sink.write({"i": i})
        sink.write_many([{"j": 0}, {"j": 1}])
        assert len(opens) == 1  # one buffered handle, not one per write
        sink.close()
        assert len(TelemetrySink.read(path)) == 7

    def test_writes_visible_before_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = TelemetrySink(path)
        sink.write({"a": 1})
        # flushed per write call: readable while the sink is still open
        assert TelemetrySink.read(path) == [{"a": 1}]
        sink.close()

    def test_read_skips_truncated_and_non_object_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"a": 1}\n'
            "[1, 2, 3]\n"  # valid JSON, not a record object
            '{"b": 2}\n'
            '{"c": 3, "unfinish',  # torn mid-write by a kill
            encoding="utf-8",
        )
        assert TelemetrySink.read(path) == [{"a": 1}, {"b": 2}]

    def test_read_empty_file_is_empty_list(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert TelemetrySink.read(path) == []

    def test_read_strict_raises_on_damage(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"a": 1}\n{"b":', encoding="utf-8")
        with pytest.raises(ValueError):
            TelemetrySink.read(path, strict=True)
        path.write_text('{"a": 1}\n[1]\n', encoding="utf-8")
        with pytest.raises(ValueError):
            TelemetrySink.read(path, strict=True)

    def test_context_manager_closes_and_reopens_append(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetrySink(path) as sink:
            sink.write({"a": 1})
        # a write after close reopens in append mode
        sink.write({"b": 2})
        sink.close()
        assert TelemetrySink.read(path) == [{"a": 1}, {"b": 2}]


class TestMerge:
    def test_merge_totals(self):
        runs = [
            run_synchronous(SMM, cycle_graph(n), telemetry=True) for n in (6, 8, 10)
        ]
        merged = merge_telemetry([ex.telemetry for ex in runs] + [None])
        assert merged["runs"] == 3
        assert merged["rounds_total"] == sum(ex.rounds for ex in runs)
        assert merged["rounds_max"] == max(ex.rounds for ex in runs)
        assert merged["moves"] == sum(ex.moves for ex in runs)
        for name in SMM.rule_names():
            assert merged["moves_by_rule"][name] == sum(
                ex.moves_by_rule[name] for ex in runs
            )

    def test_merge_empty(self):
        assert merge_telemetry([]) == {
            "runs": 0,
            "rounds_total": 0,
            "rounds_max": 0,
            "moves": 0,
            "moves_by_rule": {},
            "timings": {},
            "fault_events": {},
            "final_census": None,
        }

    def _campaign_telemetry(self, n, seed):
        from repro.engine import run as engine_run
        from repro.resilience import FaultEvent, FaultPlan

        plan = FaultPlan(
            events=(
                FaultEvent(kind="perturb", round=2, fraction=0.3),
                FaultEvent(kind="crash", round=8, count=1),
            ),
            seed=seed,
        )
        return engine_run(
            "smm", cycle_graph(n), backend="reference", rng=seed,
            fault_plan=plan,
        ).telemetry

    def test_merge_aggregates_fault_events(self):
        telemetries = [
            self._campaign_telemetry(10, 1),
            self._campaign_telemetry(12, 2),
        ]
        merged = merge_telemetry(telemetries)
        events = [e for t in telemetries for e in t.fault_events]
        by_kind = merged["fault_events"]
        assert set(by_kind) == {e["kind"] for e in events}
        for kind, agg in by_kind.items():
            ours = [e for e in events if e["kind"] == kind]
            assert agg["events"] == len(ours)
            assert agg["recovered"] == sum(e["recovered"] for e in ours)
            assert agg["recovery_rounds_total"] == sum(
                e["recovery_rounds"] for e in ours
            )
            assert agg["recovery_rounds_max"] == max(
                e["recovery_rounds"] for e in ours
            )
            radii = [e["radius"] for e in ours if e["radius"] is not None]
            expected = max(radii) if radii else None
            assert agg["radius_max"] == expected

    def test_merge_sums_final_census(self):
        runs = [
            run_synchronous(SMM, cycle_graph(n), telemetry=True)
            for n in (6, 8)
        ]
        merged = merge_telemetry([ex.telemetry for ex in runs])
        census = merged["final_census"]
        assert census is not None
        for key in CENSUS_KEYS:
            assert census[key] == sum(
                ex.telemetry.node_type_census[-1][key] for ex in runs
            )
        assert sum(census.values()) == 6 + 8

    def test_merge_order_independent_with_mixed_none(self):
        telemetries = [
            run_synchronous(SMM, cycle_graph(6), telemetry=True).telemetry,
            None,
            self._campaign_telemetry(10, 3),
            run_synchronous(SIS, cycle_graph(8), telemetry=True).telemetry,
            None,
        ]
        forward = merge_telemetry(telemetries)
        backward = merge_telemetry(list(reversed(telemetries)))
        # timings are float sums whose order can perturb the last ulp
        assert forward.pop("timings").keys() == backward.pop("timings").keys()
        assert forward == backward


class TestSerialization:
    def test_execution_json_roundtrip_keeps_telemetry(self):
        ex = run_synchronous(SMM, erdos_renyi_graph(9, 0.3, rng=5), telemetry=True)
        clone = execution_from_json(execution_to_json(ex))
        assert clone.telemetry == ex.telemetry
        assert clone.final == ex.final

    def test_absent_telemetry_roundtrips_as_none(self):
        ex = run_synchronous(SMM, cycle_graph(6))
        assert execution_from_json(execution_to_json(ex)).telemetry is None


class TestCLI:
    def test_run_with_telemetry_writes_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "telemetry.jsonl"
        code = main(["run", "E1", "--quick", f"--telemetry={path}"])
        capsys.readouterr()
        assert code == 0
        records = TelemetrySink.read(path)
        assert records  # one line per trial of the E1 quick sweep
        for record in records:
            assert {"family", "n", "trial", "telemetry"} <= set(record)
            telemetry = RunTelemetry.from_dict(record["telemetry"])
            assert telemetry.rounds == len(telemetry.per_round_moves)

    def test_telemetry_file_truncated_per_invocation(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"stale": true}\n', encoding="utf-8")
        code = main(["run", "E3", "--quick", f"--telemetry={path}"])
        capsys.readouterr()
        assert code == 0
        # E3 does not stream telemetry, so the truncated file stays empty
        assert path.read_text(encoding="utf-8") == ""
