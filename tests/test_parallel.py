"""Tests for :mod:`repro.parallel` — the trial fan-out subsystem.

The contract under test: ``TrialRunner`` output is a pure function of
the spec list — same specs, same results, for every ``jobs`` value,
with worker processes or inline.  Determinism comes from drawing all
randomness (configurations, integer seeds) in the parent before
dispatch, so no test here needs statistical tolerance: everything is
compared for exact equality.
"""

import dataclasses
import warnings

import pytest

from repro.core.configuration import Configuration
from repro.core.executor import run_central, run_synchronous
from repro.errors import ExperimentError
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, random_tree
from repro.matching.smm import SynchronousMaximalMatching
from repro.parallel import (
    PROTOCOLS,
    TrialRunner,
    TrialSpec,
    execute_trial,
    resolve_jobs,
    run_trials,
    spec_fingerprint,
)
from repro.parallel.trial_runner import register_protocol

SMM = SynchronousMaximalMatching()


# module-level so forked workers can rebuild the "protocol" by name
def _raise_trial_oserror():
    raise OSError("trial-scoped I/O failure")


def _raise_trial_runtimeerror():
    raise RuntimeError("trial-scoped runtime failure")


def executions_equal(a, b):
    return (
        a.stabilized == b.stabilized
        and a.rounds == b.rounds
        and a.moves == b.moves
        and a.moves_by_rule == b.moves_by_rule
        and a.initial == b.initial
        and a.final == b.final
        and a.move_log == b.move_log
        and a.history == b.history
    )


class TestExecuteTrial:
    def test_matches_direct_run(self):
        g = cycle_graph(8)
        clean = {i: None for i in g.nodes}
        direct = run_synchronous(SMM, g, clean, record_history=True)
        via_spec = execute_trial(
            TrialSpec("smm", g, clean, record_history=True)
        )
        assert executions_equal(direct, via_spec)

    def test_central_daemon(self):
        g = cycle_graph(6)
        direct = run_central(SMM, g, rng=5)
        via_spec = execute_trial(TrialSpec("smm", g, daemon="central", seed=5))
        assert executions_equal(direct, via_spec)

    def test_seed_controls_randomness(self):
        g = erdos_renyi_graph(12, 0.3, rng=1)
        a = execute_trial(TrialSpec("smm", g, daemon="central", seed=42))
        b = execute_trial(TrialSpec("smm", g, daemon="central", seed=42))
        assert executions_equal(a, b)

    def test_unknown_protocol(self):
        with pytest.raises(ExperimentError, match="protocol"):
            execute_trial(TrialSpec("nope", cycle_graph(4)))

    def test_unknown_daemon(self):
        with pytest.raises(ExperimentError, match="daemon"):
            execute_trial(TrialSpec("smm", cycle_graph(4), daemon="quantum"))

    def test_registry_contents(self):
        assert {"smm", "sis", "hsu-huang"} <= set(PROTOCOLS)

    def test_register_protocol(self):
        register_protocol("smm-alias", SynchronousMaximalMatching)
        try:
            ex = execute_trial(TrialSpec("smm-alias", cycle_graph(4)))
            assert ex.stabilized
        finally:
            del PROTOCOLS["smm-alias"]


class TestTrialRunner:
    def _specs(self, count=6):
        specs = []
        for i in range(count):
            g = random_tree(8, rng=i)
            specs.append(TrialSpec("smm", g, record_history=True))
            specs.append(TrialSpec("sis", g))
        return specs

    def test_inline_path(self):
        specs = self._specs()
        results = TrialRunner(jobs=1).map(specs)
        assert len(results) == len(specs)
        assert all(ex.stabilized for ex in results)

    def test_pool_matches_inline(self):
        specs = self._specs()
        inline = TrialRunner(jobs=1).map(specs)
        pooled = TrialRunner(jobs=2).map(specs)
        assert len(inline) == len(pooled)
        for a, b in zip(inline, pooled):
            assert executions_equal(a, b)

    def test_single_spec_runs_inline(self):
        # a one-element batch should not pay pool start-up cost; the
        # observable contract is just that it works with jobs > 1
        [ex] = TrialRunner(jobs=4).map([TrialSpec("smm", cycle_graph(5))])
        assert ex.stabilized

    def test_empty_batch(self):
        assert TrialRunner(jobs=4).map([]) == []

    def test_run_trials_helper(self):
        specs = self._specs(count=2)
        a = run_trials(specs, jobs=1)
        b = run_trials(specs, jobs=2)
        for x, y in zip(a, b):
            assert executions_equal(x, y)

    def test_chunksize_override(self):
        specs = self._specs(count=3)
        a = TrialRunner(jobs=2, chunksize=1).map(specs)
        b = TrialRunner(jobs=1).map(specs)
        for x, y in zip(a, b):
            assert executions_equal(x, y)

    def test_worker_failure_propagates(self):
        # a bad spec raises the original error, pool or no pool
        specs = [TrialSpec("smm", cycle_graph(4)), TrialSpec("nope", cycle_graph(4))]
        with pytest.raises(ExperimentError):
            TrialRunner(jobs=1).map(specs)
        with pytest.raises(ExperimentError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                TrialRunner(jobs=2).map(specs)

    @pytest.mark.parametrize(
        "key,factory,exc_type",
        [
            ("boom-os", _raise_trial_oserror, OSError),
            ("boom-rt", _raise_trial_runtimeerror, RuntimeError),
        ],
    )
    def test_trial_exception_not_mistaken_for_pool_death(
        self, key, factory, exc_type
    ):
        # regression: a trial raising OSError/RuntimeError used to be
        # indistinguishable from pool death — the runner warned and
        # silently re-ran every spec inline.  The original error must
        # propagate from the pool path with no degradation warning.
        register_protocol(key, factory)
        try:
            specs = [
                TrialSpec("smm", cycle_graph(4)),
                TrialSpec(key, cycle_graph(4)),
            ]
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                with pytest.raises(exc_type, match="trial-scoped"):
                    TrialRunner(jobs=2).map(specs)
        finally:
            del PROTOCOLS[key]

    def test_telemetry_identical_across_jobs(self):
        specs = [
            dataclasses.replace(spec, telemetry=True)
            for spec in self._specs(count=3)
        ]
        inline = TrialRunner(jobs=1).map(specs)
        pooled = TrialRunner(jobs=2).map(specs)
        for a, b in zip(inline, pooled):
            assert a.telemetry is not None and b.telemetry is not None
            assert a.telemetry.moves == b.telemetry.moves
            assert a.telemetry.moves_by_rule == b.telemetry.moves_by_rule
            assert a.telemetry.per_round_moves == b.telemetry.per_round_moves
            assert a.telemetry.node_type_census == b.telemetry.node_type_census


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_all_cores(self):
        import os

        expected = os.cpu_count() or 1
        assert resolve_jobs(0) == expected
        assert resolve_jobs(None) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestExperimentDeterminism:
    def test_e1_rows_identical_across_jobs(self):
        """The acceptance check: E1 with jobs=4 is bit-identical to
        jobs=1 (same RNG streams, same rows)."""
        from repro.experiments import e1_smm_convergence

        kwargs = dict(families=("cycle", "tree"), sizes=(4, 8), trials=4, seed=101)
        serial = e1_smm_convergence.run(jobs=1, **kwargs)
        fanned = e1_smm_convergence.run(jobs=4, **kwargs)
        assert serial.rows == fanned.rows
        assert serial.notes == fanned.notes

    def test_e2_rows_identical_across_jobs(self):
        from repro.experiments import e2_sis_convergence

        kwargs = dict(families=("cycle",), sizes=(4, 8), trials=4, seed=102)
        serial = e2_sis_convergence.run(jobs=1, **kwargs)
        fanned = e2_sis_convergence.run(jobs=3, **kwargs)
        assert serial.rows == fanned.rows

    def test_e5_rows_identical_across_jobs(self):
        from repro.experiments import e5_baseline

        kwargs = dict(families=("cycle",), sizes=(8,), trials=2, seed=105)
        serial = e5_baseline.run(jobs=1, **kwargs)
        fanned = e5_baseline.run(jobs=4, **kwargs)
        assert serial.rows == fanned.rows


class TestSpecPickling:
    def test_spec_roundtrip(self):
        import pickle

        g = cycle_graph(6)
        spec = TrialSpec(
            "smm",
            g,
            Configuration({i: None for i in g.nodes}),
            daemon="central",
            max_rounds=200,
            seed=9,
            options=(("strategy", "random"),),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert executions_equal(execute_trial(clone), execute_trial(spec))

    def test_graph_cache_not_pickled(self):
        import pickle

        g = cycle_graph(6)
        g.adjacency_arrays()  # populate the CSR cache
        clone = pickle.loads(pickle.dumps(g))
        assert clone._csr is None
        assert clone == g


class TestFingerprintFormat:
    """Pin the versioned fingerprint format (PR 7 satellite).

    The serve result store and resume checkpoints are content-addressed
    by these hashes; an accidental payload change would silently replay
    stale artefacts.  The pinned literals were computed with
    ``SCHEMA_VERSION = 2`` — if a schema bump changes them, update BOTH
    the literals and ``SCHEMA_VERSION``'s history note deliberately.
    """

    def test_pinned_fingerprints(self):
        spec = TrialSpec(protocol="smm", graph=cycle_graph(6), seed=7)
        assert spec_fingerprint(spec) == "fee222a31e568303"
        rich = TrialSpec(
            protocol="smm",
            graph=cycle_graph(6),
            daemon="central",
            seed=7,
            options=(("step_limit", 500),),
        )
        assert spec_fingerprint(rich) == "8ce0656b43130cc1"

    def test_schema_version_is_folded_in(self, monkeypatch):
        from repro.analysis import serialize

        spec = TrialSpec(protocol="smm", graph=cycle_graph(6), seed=7)
        before = spec_fingerprint(spec)
        monkeypatch.setattr(serialize, "SCHEMA_VERSION", 999)
        assert spec_fingerprint(spec) != before

    def test_shape_and_determinism(self):
        spec = TrialSpec(protocol="smm", graph=cycle_graph(6), seed=7)
        fp = spec_fingerprint(spec)
        assert len(fp) == 16
        assert int(fp, 16) >= 0  # hex
        assert spec_fingerprint(spec) == fp
        other = dataclasses.replace(spec, seed=8)
        assert spec_fingerprint(other) != fp


class TestOwnerHooks:
    """The long-lived-owner surface: on_result callbacks and
    cooperative cancellation (what `repro serve` drives)."""

    def _specs(self, count=4):
        graph = cycle_graph(8)
        return [
            TrialSpec("smm", graph, seed=100 + i) for i in range(count)
        ]

    def test_on_result_sees_every_trial_inline(self):
        seen = []
        runner = TrialRunner(
            jobs=1,
            batch_sweep=False,
            on_result=lambda i, outcome, resumed: seen.append(
                (i, outcome, resumed)
            ),
        )
        results = runner.map(self._specs())
        assert [s[0] for s in seen] == [0, 1, 2, 3]
        assert all(outcome.stabilized for _, outcome, _ in seen)
        assert all(resumed is False for _, _, resumed in seen)
        assert len(results) == 4

    def test_on_result_sees_every_trial_pooled(self):
        seen = []
        runner = TrialRunner(
            jobs=2,
            batch_sweep=False,
            shared_graphs="never",
            on_result=lambda i, outcome, resumed: seen.append(i),
        )
        results = runner.map(self._specs())
        assert sorted(seen) == [0, 1, 2, 3]
        assert len(results) == 4

    def test_on_result_with_batch_dispatch(self):
        seen = []
        runner = TrialRunner(
            jobs=1,
            batch_sweep=True,
            on_result=lambda i, outcome, resumed: seen.append(i),
        )
        runner.map(self._specs())
        assert sorted(seen) == [0, 1, 2, 3]

    def test_on_result_resilient_and_resumed(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        first = []
        TrialRunner(
            jobs=1,
            checkpoint=str(ck),
            on_result=lambda i, outcome, resumed: first.append(resumed),
        ).map(self._specs())
        assert first == [False] * 4
        second = []
        results = TrialRunner(
            jobs=1,
            checkpoint=str(ck),
            on_result=lambda i, outcome, resumed: second.append(resumed),
        ).map(self._specs())
        assert second == [True] * 4  # everything came from the checkpoint
        assert len(results) == 4

    def test_results_identical_with_and_without_hooks(self):
        plain = run_trials(self._specs())
        hooked = TrialRunner(
            jobs=1, on_result=lambda *a: None
        ).map(self._specs())
        for a, b in zip(plain, hooked):
            assert a.final == b.final and a.moves == b.moves

    def test_preset_cancel_raises_before_work(self):
        import threading

        from repro.parallel import SweepCancelled

        cancel = threading.Event()
        cancel.set()
        runner = TrialRunner(jobs=1, cancel=cancel)
        with pytest.raises(SweepCancelled):
            runner.map(self._specs())

    def test_cancel_mid_sweep_inline(self):
        import threading

        from repro.parallel import SweepCancelled

        cancel = threading.Event()
        seen = []

        def hook(i, outcome, resumed):
            seen.append(i)
            if len(seen) == 2:
                cancel.set()

        runner = TrialRunner(
            jobs=1, batch_sweep=False, cancel=cancel, on_result=hook
        )
        with pytest.raises(SweepCancelled):
            runner.map(self._specs())
        assert len(seen) == 2  # stopped at the next scheduling point

    def test_cancel_mid_sweep_resilient_checkpoints(self, tmp_path):
        import threading

        from repro.parallel import SweepCancelled

        ck = tmp_path / "sweep.jsonl"
        cancel = threading.Event()
        seen = []

        def hook(i, outcome, resumed):
            seen.append(i)
            if len(seen) == 2:
                cancel.set()

        runner = TrialRunner(
            jobs=1, checkpoint=str(ck), cancel=cancel, on_result=hook
        )
        with pytest.raises(SweepCancelled):
            runner.map(self._specs())
        # the completed trials were flushed before the unwind: a fresh
        # runner resumes them instead of recomputing
        resumed = []
        results = TrialRunner(
            jobs=1,
            checkpoint=str(ck),
            on_result=lambda i, outcome, r: resumed.append(r),
        ).map(self._specs())
        assert len(results) == 4
        assert resumed.count(True) >= 2

    def test_expired_deadline_raises_before_work(self):
        import time as _time

        from repro.parallel import SweepCancelled

        runner = TrialRunner(jobs=1, deadline=_time.time() - 1.0)
        with pytest.raises(SweepCancelled) as excinfo:
            runner.map(self._specs())
        assert excinfo.value.reason == "deadline"

    def test_deadline_mid_sweep_inline(self):
        import time as _time

        from repro.parallel import SweepCancelled

        state = {"deadline": _time.time() + 3600.0}
        seen = []

        def hook(i, outcome, resumed):
            seen.append(i)
            if len(seen) == 2:
                state["runner"].deadline = _time.time() - 1.0

        runner = TrialRunner(
            jobs=1, batch_sweep=False, on_result=hook,
            deadline=state["deadline"],
        )
        state["runner"] = runner
        with pytest.raises(SweepCancelled) as excinfo:
            runner.map(self._specs())
        assert excinfo.value.reason == "deadline"
        assert len(seen) == 2  # stopped at the next scheduling point

    def test_cancel_reason_defaults_to_cancel(self):
        import threading

        from repro.parallel import SweepCancelled

        cancel = threading.Event()
        cancel.set()
        runner = TrialRunner(jobs=1, cancel=cancel)
        with pytest.raises(SweepCancelled) as excinfo:
            runner.map(self._specs())
        assert excinfo.value.reason == "cancel"
