"""Tests for graph predicate checkers, incl. property-based checks."""

import pytest
from hypothesis import given, settings

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    greedy_maximal_matching,
    greedy_mis_by_descending_id,
    is_dominating_set,
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    matched_nodes,
    matching_number_upper_bound,
    maximum_matching_size,
    pointer_matching,
)

from conftest import connected_graphs


class TestMatching:
    def test_empty_is_matching(self):
        assert is_matching(cycle_graph(4), [])

    def test_disjoint_edges(self):
        assert is_matching(cycle_graph(6), [(0, 1), (3, 4)])

    def test_shared_endpoint_rejected(self):
        assert not is_matching(cycle_graph(6), [(0, 1), (1, 2)])

    def test_non_edge_rejected(self):
        assert not is_matching(cycle_graph(6), [(0, 3)])

    def test_matched_nodes(self):
        assert matched_nodes([(0, 1), (3, 4)]) == {0, 1, 3, 4}


class TestMaximalMatching:
    def test_perfect_matching_on_c4(self):
        assert is_maximal_matching(cycle_graph(4), [(0, 1), (2, 3)])

    def test_single_edge_on_c4_not_maximal(self):
        assert not is_maximal_matching(cycle_graph(4), [(0, 1)])

    def test_empty_on_edgeless_graph_maximal(self):
        g = Graph([0, 1, 2], [])
        assert is_maximal_matching(g, [])

    def test_empty_on_nonempty_graph_not_maximal(self):
        assert not is_maximal_matching(path_graph(2), [])

    def test_star_center_edge_maximal(self):
        assert is_maximal_matching(star_graph(5), [(0, 3)])

    def test_invalid_matching_never_maximal(self):
        assert not is_maximal_matching(cycle_graph(4), [(0, 1), (1, 2)])


class TestIndependentAndDominating:
    def test_alternating_cycle_is_independent(self):
        assert is_independent_set(cycle_graph(6), {0, 2, 4})

    def test_adjacent_nodes_not_independent(self):
        assert not is_independent_set(cycle_graph(6), {0, 1})

    def test_unknown_node_not_independent(self):
        assert not is_independent_set(cycle_graph(6), {0, 99})

    def test_star_hub_dominating(self):
        assert is_dominating_set(star_graph(6), {0})

    def test_star_leaf_not_dominating(self):
        assert not is_dominating_set(star_graph(6), {1})

    def test_unknown_node_not_dominating(self):
        assert not is_dominating_set(star_graph(6), {99})

    def test_mis_on_c5(self):
        assert is_maximal_independent_set(cycle_graph(5), {0, 2})
        assert not is_maximal_independent_set(cycle_graph(5), {0})  # not maximal
        assert not is_maximal_independent_set(cycle_graph(5), {0, 1})  # not indep

    def test_empty_set_on_empty_graph(self):
        g = Graph([], [])
        assert is_maximal_independent_set(g, set())


class TestGreedyMis:
    def test_path_descending(self):
        # ids 0-1-2-3: greedy by descending id picks 3, then 1
        assert greedy_mis_by_descending_id(path_graph(4)) == {1, 3}

    def test_complete_graph_picks_max(self):
        assert greedy_mis_by_descending_id(complete_graph(5)) == {4}

    def test_always_mis(self):
        for n in (3, 5, 8):
            g = cycle_graph(n)
            s = greedy_mis_by_descending_id(g)
            assert is_maximal_independent_set(g, s)

    def test_fixpoint_characterization(self):
        g = cycle_graph(7)
        s = greedy_mis_by_descending_id(g)
        for i in g.nodes:
            blocked = any(j > i and j in s for j in g.neighbors(i))
            assert (i in s) == (not blocked)


class TestGreedyMatching:
    def test_is_maximal(self):
        for n in (2, 5, 9):
            g = path_graph(n)
            m = greedy_maximal_matching(g)
            assert is_maximal_matching(g, m)

    def test_empty_graph(self):
        assert greedy_maximal_matching(Graph([0], [])) == frozenset()

    def test_deterministic(self):
        g = complete_graph(6)
        assert greedy_maximal_matching(g) == greedy_maximal_matching(g)


class TestPointerMatching:
    def test_reciprocated_pair(self):
        assert pointer_matching({0: 1, 1: 0, 2: None}) == {(0, 1)}

    def test_unreciprocated_ignored(self):
        assert pointer_matching({0: 1, 1: 2, 2: 1}) == {(1, 2)}

    def test_all_null(self):
        assert pointer_matching({0: None, 1: None}) == frozenset()

    def test_self_pointer_ignored(self):
        assert pointer_matching({0: 0, 1: None}) == frozenset()


class TestBounds:
    def test_upper_bound(self):
        assert matching_number_upper_bound(cycle_graph(7)) == 3

    def test_maximum_matching_c6(self):
        assert maximum_matching_size(cycle_graph(6)) == 3


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(connected_graphs())
    def test_greedy_mis_is_mis(self, g):
        assert is_maximal_independent_set(g, greedy_mis_by_descending_id(g))

    @settings(max_examples=30, deadline=None)
    @given(connected_graphs())
    def test_greedy_matching_is_maximal(self, g):
        assert is_maximal_matching(g, greedy_maximal_matching(g))

    @settings(max_examples=25, deadline=None)
    @given(connected_graphs(min_n=2, max_n=10))
    def test_maximal_matching_half_of_maximum(self, g):
        """Classical guarantee: any maximal matching has >= 1/2 the
        maximum matching size."""
        maximal = greedy_maximal_matching(g)
        assert 2 * len(maximal) >= maximum_matching_size(g)

    @settings(max_examples=25, deadline=None)
    @given(connected_graphs())
    def test_mis_is_dominating(self, g):
        s = greedy_mis_by_descending_id(g)
        assert is_dominating_set(g, s)
