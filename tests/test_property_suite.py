"""Cross-cutting property-based tests (hypothesis).

Each property here spans several modules: protocols, verification,
classical combinatorial guarantees and fault machinery — the global
soundness net over randomly generated instances.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.theory import sis_round_bound, smm_round_bound
from repro.core.executor import run_synchronous
from repro.core.faults import (
    migrate_configuration,
    perturb_configuration,
    random_configuration,
)
from repro.graphs.mutations import apply_churn
from repro.graphs.properties import maximum_matching_size
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.verify import matching_of, verify_execution as verify_matching
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.verify import independent_set_of, verify_execution as verify_mis
from repro.spanning.bfs_tree import BfsSpanningTree, bfs_distances

from conftest import connected_graphs, graphs_with_bits, graphs_with_pointers

SMM = SynchronousMaximalMatching()
SIS = SynchronousMaximalIndependentSet()

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestClassicalGuarantees:
    @RELAXED
    @given(graphs_with_pointers())
    def test_smm_matching_at_least_half_maximum(self, graph_and_config):
        """Any maximal matching is a 2-approximation of the maximum —
        SMM's output must inherit the guarantee."""
        g, cfg = graph_and_config
        ex = run_synchronous(SMM, g, cfg)
        m = verify_matching(g, ex)
        assert 2 * len(m) >= maximum_matching_size(g)

    @RELAXED
    @given(graphs_with_bits())
    def test_sis_set_at_least_turan_bound(self, graph_and_config):
        """Any MIS has at least n/(Δ+1) nodes."""
        g, cfg = graph_and_config
        ex = run_synchronous(SIS, g, cfg)
        s = verify_mis(g, ex, expect_greedy=True)
        assert len(s) * (g.max_degree() + 1) >= g.n

    @RELAXED
    @given(graphs_with_pointers())
    def test_smm_and_sis_bounds_joint(self, graph_and_config):
        g, cfg = graph_and_config
        ex = run_synchronous(SMM, g, cfg)
        assert ex.rounds <= smm_round_bound(g.n)
        ex2 = run_synchronous(SIS, g)
        assert ex2.rounds <= sis_round_bound(g.n)


class TestFaultLifecycleProperties:
    @RELAXED
    @given(connected_graphs(min_n=3, max_n=10), st.integers(0, 2**31 - 1))
    def test_perturb_then_recover(self, g, seed):
        rng = np.random.default_rng(seed)
        ex = run_synchronous(SMM, g)
        corrupted = perturb_configuration(SMM, g, ex.final, fraction=0.5, rng=rng)
        ex2 = run_synchronous(SMM, g, corrupted)
        verify_matching(g, ex2)

    @RELAXED
    @given(connected_graphs(min_n=4, max_n=10), st.integers(0, 2**31 - 1))
    def test_churn_then_recover(self, g, seed):
        rng = np.random.default_rng(seed)
        ex = run_synchronous(SIS, g, random_configuration(SIS, g, rng))
        g2, _ = apply_churn(g, 2, rng)
        migrated = migrate_configuration(SIS, g, g2, ex.final)
        ex2 = run_synchronous(SIS, g2, migrated)
        verify_mis(g2, ex2, expect_greedy=True)

    @RELAXED
    @given(connected_graphs(min_n=2, max_n=10), st.integers(0, 2**31 - 1))
    def test_bfs_tree_distances_match_truth(self, g, seed):
        rng = np.random.default_rng(seed)
        p = BfsSpanningTree.make_for(g)
        cfg = random_configuration(p, g, rng)
        ex = run_synchronous(p, g, cfg, max_rounds=p.round_bound(g))
        assert ex.stabilized
        truth = bfs_distances(g, p.root_of(g))
        for node in g.nodes:
            assert ex.final[node][0] == truth[node]


class TestDeterminismProperties:
    @RELAXED
    @given(graphs_with_pointers())
    def test_synchronous_runs_are_deterministic(self, graph_and_config):
        g, cfg = graph_and_config
        a = run_synchronous(SMM, g, cfg)
        b = run_synchronous(SMM, g, cfg)
        assert a.final == b.final and a.rounds == b.rounds
        assert a.move_log == b.move_log

    @RELAXED
    @given(graphs_with_bits())
    def test_sis_final_independent_of_start(self, graph_and_config):
        g, cfg = graph_and_config
        from_cfg = run_synchronous(SIS, g, cfg).final
        from_clean = run_synchronous(SIS, g).final
        assert from_cfg == from_clean

    @RELAXED
    @given(graphs_with_pointers())
    def test_batch_kernel_agrees_with_engine(self, graph_and_config):
        from repro.matching.smm_batch import BatchSMM

        g, cfg = graph_and_config
        ref = run_synchronous(SMM, g, cfg)
        batch = BatchSMM(g)
        res = batch.run_batch([cfg])
        assert res.all_stabilized
        assert int(res.rounds[0]) == ref.rounds
        assert batch.single.decode(res.final_ptr[0]) == ref.final
