"""Tests for the Protocol/Rule/View abstractions, via a toy protocol."""

from typing import Mapping, Sequence

import numpy as np
import pytest

from repro.core.protocol import Protocol, Rule, View
from repro.errors import InvalidConfigurationError, ProtocolError
from repro.graphs.generators import path_graph
from repro.graphs.graph import Graph
from repro.types import NodeId


class CountdownProtocol(Protocol[int]):
    """Toy protocol: decrement until zero (no neighbour interaction)."""

    name = "countdown"

    def __init__(self) -> None:
        self._rules = (
            Rule(
                "DEC",
                guard=lambda v: v.state > 0,
                action=lambda v: v.state - 1,
                description="decrement",
            ),
        )

    def rules(self) -> Sequence[Rule[int]]:
        return self._rules

    def initial_state(self, node: NodeId, graph: Graph) -> int:
        return 0

    def random_state(self, node, graph, rng: np.random.Generator) -> int:
        return int(rng.integers(4))

    def validate_state(self, node, graph, state) -> None:
        if not isinstance(state, int) or state < 0:
            raise InvalidConfigurationError(f"bad state {state!r}")

    def is_legitimate(self, graph, config: Mapping[NodeId, int]) -> bool:
        return all(s == 0 for s in config.values())


def make_view(state=0, neighbors=None, **kw):
    return View(node=0, state=state, neighbor_states=neighbors or {}, **kw)


class TestView:
    def test_neighbors_sorted(self):
        v = make_view(neighbors={3: "x", 1: "y"})
        assert v.neighbors == (1, 3)

    def test_state_of(self):
        v = make_view(neighbors={1: "y"})
        assert v.state_of(1) == "y"

    def test_state_of_unknown_raises(self):
        with pytest.raises(ProtocolError):
            make_view().state_of(9)

    def test_any_all_neighbors(self):
        v = make_view(neighbors={1: 2, 2: 4})
        assert v.any_neighbor(lambda j, s: s == 4)
        assert not v.any_neighbor(lambda j, s: s == 9)
        assert v.all_neighbors(lambda j, s: s % 2 == 0)
        assert not v.all_neighbors(lambda j, s: s > 2)

    def test_all_neighbors_vacuous(self):
        assert make_view().all_neighbors(lambda j, s: False)

    def test_neighbors_where(self):
        v = make_view(neighbors={1: 0, 2: 1, 3: 0})
        assert v.neighbors_where(lambda j, s: s == 0) == (1, 3)

    def test_rand_defaults(self):
        v = make_view()
        assert v.rand == 0.0 and v.neighbor_rand == {}


class TestRule:
    def test_enabled_and_fire(self):
        r = Rule("inc", guard=lambda v: v.state < 2, action=lambda v: v.state + 1)
        v = make_view(state=1)
        assert r.enabled(v)
        assert r.fire(v) == 2

    def test_fire_with_false_guard_raises(self):
        r = Rule("inc", guard=lambda v: False, action=lambda v: 1)
        with pytest.raises(ProtocolError):
            r.fire(make_view())


class TestProtocol:
    def setup_method(self):
        self.protocol = CountdownProtocol()
        self.graph = path_graph(3)

    def test_enabled_rule_first_match(self):
        view = make_view(state=2)
        rule = self.protocol.enabled_rule(view)
        assert rule is not None and rule.name == "DEC"

    def test_enabled_rule_none_when_stable(self):
        assert self.protocol.enabled_rule(make_view(state=0)) is None

    def test_is_enabled(self):
        assert self.protocol.is_enabled(make_view(state=1))
        assert not self.protocol.is_enabled(make_view(state=0))

    def test_rule_names(self):
        assert self.protocol.rule_names() == ("DEC",)

    def test_duplicate_rule_names_rejected(self):
        class BadProtocol(CountdownProtocol):
            def rules(self):
                r = Rule("X", guard=lambda v: False, action=lambda v: 0)
                return (r, r)

        with pytest.raises(ProtocolError):
            BadProtocol().rule_names()

    def test_validate_configuration_ok(self):
        self.protocol.validate_configuration(self.graph, {0: 0, 1: 1, 2: 2})

    def test_validate_configuration_missing_node(self):
        with pytest.raises(InvalidConfigurationError):
            self.protocol.validate_configuration(self.graph, {0: 0, 1: 0})

    def test_validate_configuration_extra_node(self):
        with pytest.raises(InvalidConfigurationError):
            self.protocol.validate_configuration(
                self.graph, {0: 0, 1: 0, 2: 0, 7: 0}
            )

    def test_validate_configuration_bad_state(self):
        with pytest.raises(InvalidConfigurationError):
            self.protocol.validate_configuration(self.graph, {0: 0, 1: -1, 2: 0})

    def test_uses_randomness_default_false(self):
        assert CountdownProtocol.uses_randomness is False
