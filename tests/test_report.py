"""Tests for the one-shot reproduction report."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.report import (
    _commentary_for,
    _core_claim_holds,
    build_report,
    write_report,
)


def make_result(exp, rows, columns=("x",)):
    r = ExperimentResult(exp, "artifact", columns=list(columns))
    for row in rows:
        r.rows.append(row)
    return r


class TestCoreClaims:
    def test_e1_pass_and_fail(self):
        good = make_result("E1", [{"within_bound": 1.0}])
        bad = make_result("E1", [{"within_bound": 0.0}])
        assert _core_claim_holds(good)
        assert not _core_claim_holds(bad)

    def test_e2(self):
        good = make_result("E2", [{"within_bound": 1.0, "greedy_fixpoint": True}])
        bad = make_result("E2", [{"within_bound": 1.0, "greedy_fixpoint": False}])
        assert _core_claim_holds(good) and not _core_claim_holds(bad)

    def test_e3_empty_fails(self):
        assert not _core_claim_holds(make_result("E3", []))

    def test_e4(self):
        good = make_result(
            "E4",
            [
                {"variant": "arbitrary(clockwise)", "stabilized": False},
                {"variant": "min-id (SMM)", "stabilized": True, "rounds": 3, "bound": 5},
            ],
        )
        bad = make_result(
            "E4", [{"variant": "arbitrary(clockwise)", "stabilized": True}]
        )
        assert _core_claim_holds(good) and not _core_claim_holds(bad)

    def test_e5(self):
        assert _core_claim_holds(make_result("E5", [{"slowdown_id": 2.0}]))
        assert not _core_claim_holds(make_result("E5", [{"slowdown_id": 0.5}]))

    def test_e7(self):
        good = make_result("E7", [{"recovery_rounds": 1, "fresh_rounds": 4}])
        bad = make_result("E7", [{"recovery_rounds": 4, "fresh_rounds": 1}])
        assert _core_claim_holds(good) and not _core_claim_holds(bad)

    def test_e10_ignores_unchecked_rows(self):
        r = make_result("E10", [{"agree": None}, {"agree": True}])
        assert _core_claim_holds(r)

    def test_e11_beacon_only_safe_timeouts_counted(self):
        r = make_result(
            "E11-beacon",
            [
                {"timeout_factor": 1.5, "all_stabilized": False},
                {"timeout_factor": 2.5, "all_stabilized": True},
            ],
        )
        assert _core_claim_holds(r)

    def test_e13(self):
        good = make_result("E13", [{"recovered_frac": 1.0}])
        bad = make_result("E13", [{"recovered_frac": 0.8}])
        assert _core_claim_holds(good) and not _core_claim_holds(bad)
        assert not _core_claim_holds(make_result("E13", []))

    def test_unknown_experiment_passes(self):
        assert _core_claim_holds(make_result("E99", []))


class TestCommentary:
    def test_series_commentary_fits_order(self):
        r = make_result(
            "E2-series",
            [{"n": n, "rounds": n} for n in (8, 16, 32, 64)],
        )
        lines = _commentary_for(r)
        assert any("linear" in line for line in lines)

    def test_e5_commentary_range(self):
        r = make_result("E5", [{"slowdown_id": 2.0}, {"slowdown_id": 4.0}])
        lines = _commentary_for(r)
        assert any("2.0×–4.0×" in line for line in lines)


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report_text(self):
        # quick-scale full report: runs every experiment once
        return build_report(quick=True)

    def test_all_sections_present(self, report_text):
        for i in range(1, 15):
            assert f"## E{i} —" in report_text

    def test_summary_line(self, report_text):
        assert "**Summary: 14/14 experiments reproduced.**" in report_text

    def test_no_failures(self, report_text):
        assert "✗ FAILED" not in report_text

    def test_write_report(self, tmp_path):
        path = tmp_path / "REPORT.md"
        text = write_report(str(path), quick=True)
        assert path.read_text() == text
