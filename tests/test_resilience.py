"""Tests for the fault-campaign engine and the resilient trial runner.

Covers the :mod:`repro.resilience` package (plans, the campaign driver,
recovery metrics), the regression fixes in :mod:`repro.core.faults`,
and the resilient mode of :class:`repro.parallel.TrialRunner` (per-trial
timeouts, bounded retry, checkpoint/resume, failed-trial records).
The cross-backend byte-identity of campaigns is pinned separately in
``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.executor import run_central, run_distributed, run_synchronous
from repro.core.faults import (
    migrate_configuration,
    perturb_configuration,
    perturb_victims,
    random_configuration,
)
from repro.core.transform import run_synchronized_central
from repro.engine import run as engine_run
from repro.errors import ExperimentError, ProtocolError, StabilizationTimeout
from repro.graphs.generators import cycle_graph, path_graph, random_tree
from repro.graphs.graph import Graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.verify import verify_execution as verify_matching
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.parallel import (
    FailedTrial,
    TrialRunner,
    TrialSpec,
    run_trials,
    spec_fingerprint,
)
from repro.parallel.trial_runner import PROTOCOLS, register_protocol
from repro.resilience import FaultEvent, FaultPlan, run_reference_campaign
from repro.rng import ensure_rng


class _SleepyMatching(SynchronousMaximalMatching):
    """SMM that hangs in every rule evaluation — the timeout fixture.

    Module-level so forked workers can unpickle it; the registry entry
    itself is inherited through fork (registration happens in the parent
    before the worker processes start).
    """

    def enabled_rule(self, view):
        time.sleep(5.0)
        return super().enabled_rule(view)


class TestFaultPlan:
    def make_plan(self) -> FaultPlan:
        return FaultPlan(
            events=(
                FaultEvent(round=9, kind="churn", churn=2),
                FaultEvent(round=4, kind="perturb", fraction=0.3),
                FaultEvent(round=14, kind="crash", nodes=(1, 2)),
                FaultEvent(round=14, kind="rejoin"),
                FaultEvent(
                    round=20,
                    kind="churn",
                    add_edges=((0, 2),),
                    remove_edges=((0, 1),),
                ),
            ),
            seed=5,
        )

    def test_events_sorted_by_round_stable(self):
        plan = self.make_plan()
        assert [ev.round for ev in plan.events] == [4, 9, 14, 14, 20]
        # same-round events keep their original relative order
        assert plan.events[2].kind == "crash"
        assert plan.events[3].kind == "rejoin"

    def test_json_roundtrip(self):
        plan = self.make_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        plan = self.make_plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_event_field_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fault-event"):
            FaultPlan.from_dict(
                {"events": [{"round": 1, "kind": "perturb", "victims": [1]}]}
            )

    def test_missing_round_or_kind_rejected(self):
        with pytest.raises(ExperimentError, match="'round' and 'kind'"):
            FaultPlan.from_dict({"events": [{"kind": "perturb"}]})

    def test_invalid_json_rejected(self):
        with pytest.raises(ExperimentError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ExperimentError, match="must be an object"):
            FaultPlan.from_json("[1, 2]")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"round": 1, "kind": "meteor-strike"},
            {"round": -1, "kind": "perturb"},
            {"round": 1, "kind": "perturb", "fraction": 1.5},
            {"round": 1, "kind": "perturb", "count": -2},
        ],
    )
    def test_invalid_event_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            FaultEvent(**kwargs)

    def test_victim_count_rules(self):
        assert FaultEvent(round=1, kind="perturb", count=3).victim_count(10) == 3
        assert FaultEvent(round=1, kind="perturb", count=99).victim_count(10) == 10
        # default fraction 0.25, at least one victim when positive
        assert FaultEvent(round=1, kind="perturb").victim_count(12) == 3
        assert (
            FaultEvent(round=1, kind="perturb", fraction=0.01).victim_count(10)
            == 1
        )
        assert (
            FaultEvent(round=1, kind="perturb", fraction=0.0).victim_count(10)
            == 0
        )

    def test_event_rng_deterministic_and_overridable(self):
        plan = self.make_plan()
        a = plan.event_rng(0).integers(0, 1 << 30, size=4)
        b = plan.event_rng(0).integers(0, 1 << 30, size=4)
        assert (a == b).all()
        # distinct events get independent streams
        c = plan.event_rng(1).integers(0, 1 << 30, size=4)
        assert not (a == c).all()
        # an explicit event seed overrides the derived one
        ev = FaultEvent(round=1, kind="perturb", seed=123)
        seeded = FaultPlan(events=(ev,), seed=5)
        expect = np.random.default_rng(123).integers(0, 1 << 30, size=4)
        assert (seeded.event_rng(0).integers(0, 1 << 30, size=4) == expect).all()


class TestCampaignDriver:
    def test_idle_fill_to_event_round(self):
        # SMM on a small cycle stabilizes in a handful of rounds; an
        # event at round 20 must still fire — quiescent rounds are
        # counted up to it (beacons keep flowing in a stable system)
        graph = cycle_graph(8)
        protocol = SynchronousMaximalMatching()
        config = random_configuration(protocol, graph, ensure_rng(0))
        plan = FaultPlan(events=(FaultEvent(round=20, kind="perturb"),), seed=1)
        ex = run_reference_campaign(protocol, graph, config, fault_plan=plan)
        record = ex.telemetry.fault_events[0]
        assert record["round"] == 20
        assert ex.rounds >= 20
        assert ex.stabilized and ex.legitimate
        verify_matching(graph, ex)

    def test_history_has_one_extra_entry_per_event(self):
        graph = cycle_graph(8)
        protocol = SynchronousMaximalMatching()
        config = random_configuration(protocol, graph, ensure_rng(1))
        plan = FaultPlan(
            events=(
                FaultEvent(round=10, kind="perturb"),
                FaultEvent(round=15, kind="perturb"),
            ),
            seed=2,
        )
        ex = run_reference_campaign(
            protocol, graph, config, fault_plan=plan, record_history=True
        )
        # initial config + one per round + the post-event snapshots
        assert len(ex.history) == ex.rounds + 1 + len(plan.events)

    def test_recovery_record_shape(self):
        graph = random_tree(10, ensure_rng(4))
        protocol = SynchronousMaximalIndependentSet()
        config = random_configuration(protocol, graph, ensure_rng(4))
        plan = FaultPlan(
            events=(FaultEvent(round=12, kind="perturb", fraction=0.5),),
            seed=3,
        )
        ex = run_reference_campaign(protocol, graph, config, fault_plan=plan)
        (record,) = ex.telemetry.fault_events
        assert set(record) == {
            "index",
            "kind",
            "round",
            "sites",
            "recovered",
            "recovery_rounds",
            "moves",
            "moves_by_rule",
            "touched",
            "radius",
        }
        assert record["index"] == 0 and record["kind"] == "perturb"
        assert record["recovered"] is True
        assert record["touched"] <= graph.n
        assert json.dumps(record)  # telemetry records stay JSON-clean

    def test_message_loss_is_noop_for_bit_protocols(self):
        # SIS states reference no neighbour, so evicting a silent node
        # from everyone's tables changes nobody's state: recovery is
        # instant by construction
        graph = cycle_graph(9)
        protocol = SynchronousMaximalIndependentSet()
        config = random_configuration(protocol, graph, ensure_rng(2))
        plan = FaultPlan(
            events=(FaultEvent(round=12, kind="message_loss", count=2),),
            seed=4,
        )
        ex = run_reference_campaign(protocol, graph, config, fault_plan=plan)
        (record,) = ex.telemetry.fault_events
        assert record["recovery_rounds"] == 0
        assert record["touched"] == 0
        assert ex.stabilized and ex.legitimate

    def test_crash_rejoin_restores_topology(self):
        graph = cycle_graph(8)
        protocol = SynchronousMaximalMatching()
        config = random_configuration(protocol, graph, ensure_rng(3))
        plan = FaultPlan(
            events=(
                FaultEvent(round=10, kind="crash", nodes=(0,)),
                FaultEvent(round=20, kind="rejoin"),
            ),
            seed=5,
        )
        ex = run_reference_campaign(protocol, graph, config, fault_plan=plan)
        crash, rejoin = ex.telemetry.fault_events
        assert crash["kind"] == "crash" and rejoin["kind"] == "rejoin"
        assert 0 in crash["sites"]
        assert ex.stabilized and ex.legitimate
        # after the rejoin every downed link is back: the final
        # configuration is a maximal matching of the ORIGINAL graph
        verify_matching(graph, ex)

    def test_crash_already_crashed_rejected(self):
        graph = cycle_graph(6)
        plan = FaultPlan(
            events=(
                FaultEvent(round=8, kind="crash", nodes=(2,)),
                FaultEvent(round=12, kind="crash", nodes=(2,)),
            ),
        )
        with pytest.raises(ExperimentError, match="already-crashed"):
            run_reference_campaign(
                SynchronousMaximalMatching(), graph, fault_plan=plan
            )

    def test_events_beyond_budget_never_fire(self):
        graph = cycle_graph(8)
        protocol = SynchronousMaximalMatching()
        config = random_configuration(protocol, graph, ensure_rng(5))
        plan = FaultPlan(events=(FaultEvent(round=50, kind="perturb"),))
        ex = run_reference_campaign(
            protocol, graph, config, fault_plan=plan, max_rounds=10
        )
        assert ex.telemetry.fault_events == []
        plain = run_synchronous(protocol, graph, config, max_rounds=10)
        assert ex.rounds == plain.rounds and ex.final == plain.final

    def test_monitors_rejected(self):
        plan = FaultPlan(events=(FaultEvent(round=2, kind="perturb"),))
        with pytest.raises(ExperimentError, match="monitor"):
            run_reference_campaign(
                SynchronousMaximalMatching(),
                cycle_graph(6),
                fault_plan=plan,
                monitors=(lambda *a, **k: None,),
            )

    def test_raise_on_timeout(self):
        graph = cycle_graph(10)
        protocol = SynchronousMaximalMatching()
        config = random_configuration(protocol, graph, ensure_rng(6))
        plan = FaultPlan(events=(FaultEvent(round=1, kind="perturb"),), seed=1)
        with pytest.raises(StabilizationTimeout):
            run_reference_campaign(
                protocol,
                graph,
                config,
                fault_plan=plan,
                max_rounds=1,
                raise_on_timeout=True,
            )

    @pytest.mark.parametrize(
        "runner", [run_central, run_distributed, run_synchronized_central]
    )
    def test_other_daemons_reject_fault_plans(self, runner):
        plan = FaultPlan(events=(FaultEvent(round=2, kind="perturb"),))
        with pytest.raises(ExperimentError, match="fault campaign"):
            runner(
                SynchronousMaximalMatching(),
                cycle_graph(6),
                rng=0,
                fault_plan=plan,
            )

    def test_engine_front_door_runs_campaigns(self):
        # run_synchronous(fault_plan=...) and engine run() agree
        graph = cycle_graph(9)
        protocol = SynchronousMaximalMatching()
        config = random_configuration(protocol, graph, ensure_rng(7))
        plan = FaultPlan(
            events=(FaultEvent(round=11, kind="churn", churn=2),), seed=9
        )
        direct = run_synchronous(protocol, graph, config, fault_plan=plan)
        engined = engine_run(
            "smm", graph, config, backend="reference", fault_plan=plan
        )
        assert direct.final == engined.final
        assert direct.rounds == engined.rounds
        assert (
            direct.telemetry.fault_events == engined.telemetry.fault_events
        )


class _ResetOnMigrate:
    """Minimal protocol stub: validate_state always rejects with the
    library's own error type, so migration resets every node."""

    def validate_state(self, node, graph, state):
        raise ProtocolError("never valid")

    def initial_state(self, node, graph):
        return "INIT"

    def validate_configuration(self, graph, config):
        return None


class _BuggyValidate(_ResetOnMigrate):
    """validate_state crashes with a non-repro error — a protocol bug
    that migration must surface, not swallow."""

    def validate_state(self, node, graph, state):
        raise TypeError("boom")


class TestFaultsRegressions:
    def test_migrate_resets_on_protocol_error(self):
        graph = cycle_graph(4)
        config = Configuration({i: i for i in range(4)})
        out = migrate_configuration(_ResetOnMigrate(), graph, graph, config)
        assert all(out[i] == "INIT" for i in range(4))

    def test_migrate_propagates_foreign_errors(self):
        # the old bare `except Exception` silently reset states on ANY
        # error; a buggy validate_state must now raise through
        graph = cycle_graph(4)
        config = Configuration({i: i for i in range(4)})
        with pytest.raises(TypeError, match="boom"):
            migrate_configuration(_BuggyValidate(), graph, graph, config)

    def test_perturb_victims_keep_id_types(self):
        # the draw goes through dense indices and maps back via the node
        # tuple, so victims are plain Python ints (not numpy scalars)
        # even for sparse, non-contiguous id spaces
        graph = Graph([5, 17, 42, 99], [(5, 17), (17, 42), (42, 99)])
        victims = perturb_victims(graph, 3, ensure_rng(0))
        assert len(victims) == 3 and len(set(victims)) == 3
        assert set(victims) <= set(graph.nodes)
        assert all(type(v) is int for v in victims)
        ints = perturb_victims(path_graph(5), 4, ensure_rng(0))
        assert all(type(v) is int for v in ints)

    def test_perturb_configuration_sparse_ids(self):
        graph = Graph([5, 17, 42, 99], [(5, 17), (17, 42), (42, 99)])
        protocol = SynchronousMaximalMatching()
        config = Configuration({v: None for v in graph.nodes})
        out = perturb_configuration(
            protocol, graph, config, fraction=1.0, rng=ensure_rng(1)
        )
        protocol.validate_configuration(graph, out)
        assert set(out.as_dict()) == set(graph.nodes)
        # perturbed states reference real ids of the original graph
        for node, state in out.as_dict().items():
            assert state is None or type(state) is int


def _make_specs(count=4, seed0=0):
    graph = cycle_graph(9)
    protocol = SynchronousMaximalMatching()
    return [
        TrialSpec(
            protocol="smm",
            graph=graph,
            config=random_configuration(protocol, graph, ensure_rng(seed0 + s)),
        )
        for s in range(count)
    ]


class TestResilientRunner:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            TrialRunner(timeout=0)
        with pytest.raises(ValueError):
            TrialRunner(retries=-1)
        assert not TrialRunner().resilient
        assert TrialRunner(timeout=5).resilient
        assert TrialRunner(retries=1).resilient
        assert TrialRunner(checkpoint="x.jsonl").resilient

    def test_resilient_matches_legacy(self, tmp_path):
        specs = _make_specs()
        legacy = TrialRunner(jobs=1).map(specs)
        resilient = TrialRunner(
            jobs=1, timeout=60, retries=1, checkpoint=str(tmp_path / "ck.jsonl")
        ).map(specs)
        for a, b in zip(legacy, resilient):
            assert a.final == b.final
            assert a.rounds == b.rounds
            assert a.moves_by_rule == b.moves_by_rule

    def test_kill_resume_runs_exactly_the_missing_trials(self, tmp_path):
        specs = _make_specs(4)
        ck = tmp_path / "sweep.jsonl"
        uninterrupted = TrialRunner(jobs=1).map(specs)
        full = TrialRunner(jobs=1, checkpoint=str(ck)).map(specs)
        lines = ck.read_text().strip().splitlines()
        assert len(lines) == 4
        # simulate a kill after 2 of 4 trials: truncate the checkpoint
        ck.write_text("\n".join(lines[:2]) + "\n")
        resumed = TrialRunner(jobs=1, checkpoint=str(ck)).map(specs)
        # exactly n - k = 2 new records were appended
        assert len(ck.read_text().strip().splitlines()) == 4
        for a, b, c in zip(uninterrupted, full, resumed):
            assert a.final == b.final == c.final
            assert a.rounds == b.rounds == c.rounds
            assert a.moves_by_rule == b.moves_by_rule == c.moves_by_rule

    def test_checkpoint_ignores_corrupt_and_stale_lines(self, tmp_path):
        specs = _make_specs(2)
        ck = tmp_path / "sweep.jsonl"
        fingerprint = spec_fingerprint(specs[0])
        ck.write_text(
            "this is not json\n"
            + json.dumps(
                {"index": 1, "fingerprint": "0123456789abcdef", "status": "ok"}
            )
            + "\n"
        )
        results = TrialRunner(jobs=1, checkpoint=str(ck)).map(specs)
        assert all(not isinstance(r, FailedTrial) for r in results)
        # both trials re-ran (the stale fingerprint did not match)
        assert spec_fingerprint(specs[0]) == fingerprint
        assert len(ck.read_text().strip().splitlines()) == 2 + 2

    def test_spec_fingerprint_sensitivity(self):
        a, b = _make_specs(2)
        assert spec_fingerprint(a) == spec_fingerprint(a)
        assert spec_fingerprint(a) != spec_fingerprint(b)
        plan = FaultPlan(events=(FaultEvent(round=3, kind="perturb"),))
        with_plan = TrialSpec(
            protocol=a.protocol,
            graph=a.graph,
            config=a.config,
            options=(("fault_plan", plan),),
        )
        assert spec_fingerprint(with_plan) != spec_fingerprint(a)

    def test_deterministic_error_becomes_failed_trial_without_retry(
        self, tmp_path
    ):
        specs = _make_specs(3)
        broken = TrialSpec(protocol="no-such-protocol", graph=specs[0].graph)
        batch = [specs[0], broken, specs[2]]
        results = TrialRunner(jobs=1, retries=2).map(batch)
        assert not isinstance(results[0], FailedTrial)
        assert not isinstance(results[2], FailedTrial)
        failure = results[1]
        assert isinstance(failure, FailedTrial)
        assert failure.index == 1
        assert failure.error_type == "ExperimentError"
        assert failure.attempts == 1  # the trial's own error: no retry
        assert not failure.timed_out

    def test_timeout_retries_then_failed_trial(self):
        register_protocol("sleepy-test", _SleepyMatching)
        try:
            graph = cycle_graph(6)
            good = _make_specs(1)[0]
            sleepy = TrialSpec(protocol="sleepy-test", graph=graph)
            results = TrialRunner(
                jobs=1, timeout=0.5, retries=1, backoff=0.05
            ).map([good, sleepy])
        finally:
            del PROTOCOLS["sleepy-test"]
        assert not isinstance(results[0], FailedTrial)  # batch survived
        failure = results[1]
        assert isinstance(failure, FailedTrial)
        assert failure.timed_out
        assert failure.error_type == "Timeout"
        assert failure.attempts == 2  # first run + one retry

    def test_failed_trials_checkpoint_and_resume(self, tmp_path):
        # a failed record is checkpointed too: resuming does not re-run
        # the known-bad trial
        specs = _make_specs(2)
        broken = TrialSpec(protocol="no-such-protocol", graph=specs[0].graph)
        ck = tmp_path / "sweep.jsonl"
        first = TrialRunner(jobs=1, checkpoint=str(ck)).map([specs[0], broken])
        assert isinstance(first[1], FailedTrial)
        lines_before = len(ck.read_text().strip().splitlines())
        again = TrialRunner(jobs=1, checkpoint=str(ck)).map([specs[0], broken])
        assert isinstance(again[1], FailedTrial)
        assert again[1].error_type == first[1].error_type
        assert len(ck.read_text().strip().splitlines()) == lines_before

    def test_run_trials_forwards_resilience_knobs(self, tmp_path):
        specs = _make_specs(2)
        ck = tmp_path / "ck.jsonl"
        results = run_trials(
            specs, jobs=1, timeout=60, retries=1, checkpoint=str(ck)
        )
        assert len(results) == 2
        assert ck.exists()
        baseline = run_trials(specs)
        for a, b in zip(baseline, results):
            assert a.final == b.final

    def test_campaign_specs_roundtrip_through_checkpoint(self, tmp_path):
        # a campaign result (telemetry + fault_events) survives the
        # JSONL checkpoint: the resumed value equals the computed one
        graph = cycle_graph(9)
        protocol = SynchronousMaximalMatching()
        plan = FaultPlan(
            events=(FaultEvent(round=11, kind="perturb", fraction=0.4),),
            seed=6,
        )
        spec = TrialSpec(
            protocol="smm",
            graph=graph,
            config=random_configuration(protocol, graph, ensure_rng(8)),
            options=(("fault_plan", plan),),
        )
        ck = tmp_path / "ck.jsonl"
        (computed,) = TrialRunner(jobs=1, checkpoint=str(ck)).map([spec])
        (resumed,) = TrialRunner(jobs=1, checkpoint=str(ck)).map([spec])
        assert resumed.final == computed.final
        assert resumed.telemetry is not None
        assert (
            resumed.telemetry.fault_events == computed.telemetry.fault_events
        )
