"""Tests for seeded randomness helpers."""

import numpy as np
import pytest

from repro.rng import (
    DEFAULT_SEED,
    choice,
    coin,
    ensure_rng,
    iter_rngs,
    shuffled,
    spawn,
    trial_seeds,
)


class TestEnsureRng:
    def test_none_gives_default_stream(self):
        a = ensure_rng(None)
        b = ensure_rng(None)
        assert a.random() == b.random()

    def test_int_seed_reproducible(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(5)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn(3, 5)) == 5

    def test_spawn_zero(self):
        assert spawn(3, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(3, -1)

    def test_children_independent_of_order(self):
        kids_a = spawn(9, 3)
        kids_b = spawn(9, 3)
        for a, b in zip(kids_a, kids_b):
            assert a.random() == b.random()

    def test_children_distinct(self):
        kids = spawn(9, 2)
        assert kids[0].random() != kids[1].random()


class TestTrialSeeds:
    def test_count_and_type(self):
        seeds = trial_seeds(7, 10)
        assert len(seeds) == 10
        assert all(isinstance(s, int) for s in seeds)

    def test_distinct(self):
        seeds = trial_seeds(7, 100)
        assert len(set(seeds)) == 100

    def test_reproducible(self):
        assert trial_seeds(7, 5) == trial_seeds(7, 5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            trial_seeds(7, -1)

    def test_fits_in_63_bits(self):
        assert all(0 <= s < 2**63 for s in trial_seeds(3, 50))


class TestHelpers:
    def test_shuffled_preserves_multiset(self):
        data = [1, 2, 2, 3]
        out = shuffled(data, 1)
        assert sorted(out) == data
        assert data == [1, 2, 2, 3]  # input untouched

    def test_shuffled_reproducible(self):
        assert shuffled(range(20), 4) == shuffled(range(20), 4)

    def test_choice_member(self):
        assert choice([10, 20, 30], 1) in (10, 20, 30)

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            choice([], 1)

    def test_coin_bounds(self):
        assert coin(0.0, 1) is False
        assert coin(1.0, 1) is True

    def test_coin_invalid_probability(self):
        with pytest.raises(ValueError):
            coin(1.5, 1)

    def test_coin_rate_roughly_correct(self):
        gen = ensure_rng(8)
        hits = sum(coin(0.3, gen) for _ in range(2000))
        assert 450 < hits < 750

    def test_iter_rngs_stream(self):
        it = iter_rngs(3)
        a, b = next(it), next(it)
        assert a.random() != b.random()
