"""Tests for execution / result serialization."""

import json

import pytest

from repro.analysis.serialize import (
    configuration_from_dict,
    configuration_to_dict,
    execution_from_json,
    execution_to_json,
    result_from_json,
    result_to_csv,
    result_to_json,
)
from repro.core.executor import run_synchronous
from repro.core.faults import random_configuration
from repro.domination.mds import MinimalDominatingSet
from repro.experiments.common import ExperimentResult
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet


class TestConfigurationRoundtrip:
    def test_pointer_states(self):
        cfg = {0: None, 1: 0, 2: 3, 3: 2}
        assert configuration_from_dict(configuration_to_dict(cfg)) == cfg

    def test_tuple_states(self):
        cfg = {0: (1, 2), 1: (0, 0)}
        out = configuration_from_dict(configuration_to_dict(cfg))
        assert out == cfg
        assert isinstance(out[0], tuple)

    def test_json_safe(self):
        cfg = {0: None, 1: 0}
        json.dumps(configuration_to_dict(cfg))  # must not raise


class TestExecutionRoundtrip:
    @pytest.mark.parametrize(
        "protocol_factory",
        [
            SynchronousMaximalMatching,
            SynchronousMaximalIndependentSet,
            MinimalDominatingSet,
        ],
    )
    def test_roundtrip_preserves_everything(self, protocol_factory, rng):
        protocol = protocol_factory()
        g = erdos_renyi_graph(10, 0.3, rng=3)
        cfg = random_configuration(protocol, g, rng)
        # MDS needs a non-synchronous daemon; use histories from the
        # synchronous run where applicable, else short bounded run
        ex = run_synchronous(protocol, g, cfg, record_history=True, max_rounds=30)
        text = execution_to_json(ex)
        back = execution_from_json(text)
        assert back.protocol_name == ex.protocol_name
        assert back.stabilized == ex.stabilized
        assert back.rounds == ex.rounds
        assert back.moves == ex.moves
        assert back.moves_by_rule == ex.moves_by_rule
        assert back.initial == ex.initial
        assert back.final == ex.final
        assert back.move_log == ex.move_log
        assert back.history == ex.history
        assert back.legitimate == ex.legitimate

    def test_without_history(self):
        g = cycle_graph(6)
        ex = run_synchronous(SynchronousMaximalIndependentSet(), g)
        back = execution_from_json(execution_to_json(ex))
        assert back.history is None

    def test_indent_option(self):
        g = cycle_graph(4)
        ex = run_synchronous(SynchronousMaximalIndependentSet(), g)
        assert "\n" in execution_to_json(ex, indent=2)


class TestResultSerialization:
    def make(self):
        r = ExperimentResult("EX", "thing", columns=["a", "b"])
        r.add(a=1, b=2.5)
        r.add(a=3)
        r.note("note 1")
        return r

    def test_json_roundtrip(self):
        r = self.make()
        back = result_from_json(result_to_json(r))
        assert back.experiment == "EX"
        assert back.rows == r.rows
        assert back.notes == ["note 1"]
        assert list(back.columns) == ["a", "b"]

    def test_csv(self):
        csv_text = result_to_csv(self.make())
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "3,"

    def test_csv_ignores_extra_keys(self):
        r = ExperimentResult("EX", "thing", columns=["a"])
        r.add(a=1, hidden=9)
        assert "hidden" not in result_to_csv(r)
