"""The serve control plane: schema, store, jobs, and the HTTP loop.

Four layers, tested bottom-up:

* request schema — validation errors name the offending field, the
  generator form expands deterministically;
* result store — content addressing, atomic fulfil, single-writer
  leases, the cacheability rule (only seeded specs);
* job manager — submit/execute/cancel, the crash-safe journal,
  concurrent same-spec submissions coalescing onto one computation;
* e2e over real HTTP — submit → poll → results byte-identical to
  calling :func:`repro.parallel.run_trials` directly, resubmission
  observed as a dedup hit on ``repro_result_cache_hits_total``, and
  ``/metrics`` parsing as Prometheus text exposition.

The SIGTERM/restart recovery of a live daemon (journal + checkpoint +
``/dev/shm`` audit) runs the real ``repro serve`` CLI in a subprocess.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.serialize import SCHEMA_VERSION, execution_to_dict
from repro.graphs.generators import cycle_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.parallel import (
    TrialSpec,
    leaked_shared_segments,
    run_trials,
    spec_fingerprint,
)
from repro.parallel.trial_runner import PROTOCOLS, register_protocol
from repro.serve import (
    Draining,
    JobManager,
    QueueFull,
    ReproServer,
    RequestError,
    ResultStore,
    ServeApp,
    parse_sweep_request,
    run_server,
)


class _SlowMatching(SynchronousMaximalMatching):
    """SMM that naps per rule evaluation — makes trials overlap long
    enough for coalescing/interruption tests.  Module-level so forked
    workers can unpickle it."""

    def enabled_rule(self, view):
        time.sleep(0.02)
        return super().enabled_rule(view)


# ----------------------------------------------------------------------
# request schema
# ----------------------------------------------------------------------
class TestRequestSchema:
    def test_explicit_trials_form(self):
        request = parse_sweep_request(
            {
                "trials": [
                    {
                        "protocol": "smm",
                        "graph": {"family": "cycle", "n": 6},
                        "seed": 3,
                    }
                ]
            }
        )
        assert len(request.specs) == 1
        spec = request.specs[0]
        assert spec.protocol == "smm"
        assert spec.graph == cycle_graph(6)
        assert spec.seed == 3
        assert request.mode == "auto"

    def test_explicit_graph_form(self):
        request = parse_sweep_request(
            {
                "trials": [
                    {
                        "protocol": "sis",
                        "graph": {
                            "nodes": [0, 1, 2],
                            "edges": [[0, 1], [1, 2]],
                        },
                        "seed": 1,
                    }
                ]
            }
        )
        assert request.specs[0].graph.n == 3

    def test_sweep_form_expands_deterministically(self):
        body = {
            "sweep": {
                "protocol": "smm",
                "family": "cycle",
                "n": 8,
                "trials": 4,
                "seed": 99,
            }
        }
        first = parse_sweep_request(body).specs
        second = parse_sweep_request(body).specs
        assert len(first) == 4
        assert [spec_fingerprint(s) for s in first] == [
            spec_fingerprint(s) for s in second
        ]
        # distinct seeds -> distinct initial configurations/fingerprints
        assert len({spec_fingerprint(s) for s in first}) == 4
        # init="random" drew a configuration for every trial
        assert all(s.config is not None for s in first)

    def test_sweep_form_clean_init(self):
        body = {
            "sweep": {
                "protocol": "smm",
                "family": "cycle",
                "n": 8,
                "trials": 2,
                "seed": 5,
                "init": "clean",
            }
        }
        specs = parse_sweep_request(body).specs
        assert all(s.config is None for s in specs)

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ([], "JSON object"),
            ({}, "exactly one of"),
            ({"trials": [], "mode": "auto"}, "non-empty"),
            ({"trials": [{}], "sweep": {}}, "exactly one of"),
            ({"mode": "later", "trials": [{}]}, "mode"),
            ({"schema": 999, "trials": [{}]}, "schema version"),
            (
                {"trials": [{"protocol": "nope", "graph": {"family": "cycle", "n": 4}}]},
                "unknown protocol",
            ),
            (
                {"trials": [{"protocol": "smm", "graph": {"family": "moebius", "n": 4}}]},
                "moebius",
            ),
            (
                {"trials": [{"protocol": "smm", "graph": {"family": "cycle", "n": 0}}]},
                "positive integer",
            ),
            (
                {"trials": [{"protocol": "smm"}]},
                "graph is required",
            ),
            (
                {
                    "trials": [
                        {
                            "protocol": "smm",
                            "graph": {"family": "cycle", "n": 4},
                            "daemon": "chaotic",
                        }
                    ]
                },
                "daemon",
            ),
            (
                {
                    "trials": [
                        {
                            "protocol": "smm",
                            "graph": {"family": "cycle", "n": 4},
                            "config": {"7": 0},
                        }
                    ]
                },
                "not in the graph",
            ),
            ({"sweep": {"protocol": "smm", "family": "cycle", "n": 4, "trials": 0}}, "positive"),
            (
                {"sweep": {"protocol": "smm", "family": "cycle", "n": 4, "init": "warm"}},
                "init",
            ),
        ],
    )
    def test_rejects_with_field_naming_error(self, body, fragment):
        with pytest.raises(RequestError, match=re.escape(fragment)):
            parse_sweep_request(body)


# ----------------------------------------------------------------------
# result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_round_trip_and_hit(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        kind, event = store.lease("abc123")
        assert kind == "lease"
        store.fulfill("abc123", {"moves": 4})
        assert event.is_set()
        assert store.get("abc123") == {"moves": 4}
        kind, value = store.lease("abc123")
        assert kind == "hit" and value == {"moves": 4}
        assert len(store) == 1

    def test_second_lease_waits_then_reads(self, tmp_path):
        store = ResultStore(tmp_path)
        kind, _ = store.lease("fp")
        assert kind == "lease"
        kind, event = store.lease("fp")
        assert kind == "wait"
        seen = {}

        def follower():
            seen["result"], seen["timed_out"] = store.wait(
                "fp", event, timeout=5.0
            )

        thread = threading.Thread(target=follower)
        thread.start()
        store.fulfill("fp", {"ok": True})
        thread.join(5.0)
        assert seen["result"] == {"ok": True}
        assert seen["timed_out"] is False

    def test_abandon_wakes_waiters_without_result(self, tmp_path):
        store = ResultStore(tmp_path)
        store.lease("fp")
        kind, event = store.lease("fp")
        assert kind == "wait"
        store.abandon("fp")
        result, timed_out = store.wait("fp", event, timeout=0.1)
        assert result is None
        assert timed_out is False  # abandoned, not expired
        # the fingerprint is leasable again
        kind, _ = store.lease("fp")
        assert kind == "lease"

    def test_wait_reports_timeout_distinctly(self, tmp_path):
        """Regression: ``wait`` used to discard ``Event.wait``'s bool,
        so an expired wait on a still-computing leader looked exactly
        like an abandoned lease."""
        store = ResultStore(tmp_path)
        store.lease("fp")
        kind, event = store.lease("fp")
        assert kind == "wait"
        result, timed_out = store.wait("fp", event, timeout=0.01)
        assert result is None
        assert timed_out is True  # the leader is still computing
        # once the leader fulfills, a fresh wait succeeds immediately
        store.fulfill("fp", {"ok": 1})
        result, timed_out = store.wait("fp", event, timeout=0.01)
        assert result == {"ok": 1}
        assert timed_out is False

    def test_init_sweeps_crashed_leader_tmp_files(self, tmp_path):
        """Regression: a leader killed between writing its temp file and
        ``os.replace`` left ``<fp>.json.tmp.<pid>.<tid>`` behind forever;
        a fresh store over the same root must sweep it."""
        root = tmp_path / "results"
        store = ResultStore(root)
        store.lease("fp")
        store.fulfill("fp", {"moves": 2})
        # simulate the torn write of a crashed process
        stale = root / "deadbeef.json.tmp.12345.67890"
        stale.write_text('{"moves": 1', encoding="utf-8")
        unrelated = root / "notes.txt"
        unrelated.write_text("keep me", encoding="utf-8")

        reopened = ResultStore(root)
        assert not stale.exists()
        assert unrelated.exists()  # only temp files are swept
        assert reopened.get("fp") == {"moves": 2}
        assert len(reopened) == 1

    def test_cacheable_requires_seed(self):
        graph = cycle_graph(4)
        assert ResultStore.cacheable(TrialSpec("smm", graph, seed=0))
        assert not ResultStore.cacheable(TrialSpec("smm", graph))


# ----------------------------------------------------------------------
# job manager
# ----------------------------------------------------------------------
def _specs(count=3, n=8, seed=100, protocol="smm"):
    graph = cycle_graph(n)
    return [
        TrialSpec(protocol, graph, seed=seed + i) for i in range(count)
    ]


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    return JobManager(str(tmp_path / "state"), **kwargs)


class TestJobManager:
    def test_submit_execute_results(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        try:
            job = manager.submit(_specs(3))
            assert manager.wait(job, timeout=60)
            assert job.state == "done"
            results = manager.results(job)
            assert len(results) == 3
            assert all(e["status"] == "ok" for e in results)
            direct = [execution_to_dict(r) for r in run_trials(_specs(3))]
            assert [e["result"] for e in results] == direct
            # the journal survives: a fresh manager serves the same job
            assert job.progress["computed"] == 3
        finally:
            manager.shutdown()

    def test_resubmission_hits_store(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        try:
            first = manager.submit(_specs(2))
            assert manager.wait(first, timeout=60)
            second = manager.submit(_specs(2))
            assert manager.wait(second, timeout=60)
            assert second.progress["cached"] == 2
            assert second.progress["computed"] == 0
            assert manager.results(second) is not None
            assert [e["result"] for e in manager.results(second)] == [
                e["result"] for e in manager.results(first)
            ]
        finally:
            manager.shutdown()

    def test_unseeded_specs_never_cache(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        try:
            graph = cycle_graph(6)
            spec = TrialSpec("smm", graph)  # no seed
            for _ in range(2):
                job = manager.submit([spec])
                assert manager.wait(job, timeout=60)
                assert job.progress["computed"] == 1
                assert job.progress["cached"] == 0
            assert len(manager.store) == 0
        finally:
            manager.shutdown()

    def test_within_job_duplicates_collapse(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        try:
            spec = TrialSpec("smm", cycle_graph(8), seed=1)
            job = manager.submit([spec, spec, spec])
            assert manager.wait(job, timeout=60)
            assert job.progress["computed"] == 1
            assert job.progress["cached"] == 2
            results = manager.results(job)
            assert results[0]["result"] == results[1]["result"]
            assert results[1]["result"] == results[2]["result"]
        finally:
            manager.shutdown()

    def test_concurrent_same_spec_submissions_coalesce(self, tmp_path):
        """Satellite: two simultaneous same-spec submissions -> one
        computation, two identical results."""
        register_protocol("slow-serve-test", _SlowMatching)
        try:
            manager = _manager(tmp_path, workers=2)
            manager.start()
            try:
                graph = cycle_graph(10)
                spec = TrialSpec("slow-serve-test", graph, seed=7)
                first = manager.submit([spec])
                second = manager.submit([spec])
                assert manager.wait(first, timeout=120)
                assert manager.wait(second, timeout=120)
                jobs = [first, second]
                computed = sum(j.progress["computed"] for j in jobs)
                coalesced = sum(j.progress["coalesced"] for j in jobs)
                cached = sum(j.progress["cached"] for j in jobs)
                # exactly one computation; the other submission was
                # served by waiting on it (coalesced, then counted as a
                # cache hit when the result arrived)
                assert computed == 1
                assert cached == 1
                assert coalesced <= 1  # 0 if the first job won the race
                                       # before the second even leased
                (a,) = manager.results(first)
                (b,) = manager.results(second)
                assert a["result"] == b["result"]
                with manager.metrics_lock:
                    counters = manager.registry.to_dict(["counter"])
                misses = counters["repro_result_cache_misses_total"]["samples"]
                assert sum(s["value"] for s in misses) == 1
            finally:
                manager.shutdown()
        finally:
            del PROTOCOLS["slow-serve-test"]

    def test_cancel_queued_job(self, tmp_path):
        manager = _manager(tmp_path, workers=1)
        # no start(): nothing drains the queue, the job stays queued
        job = manager.submit(_specs(1))
        assert manager.cancel(job.id) == "cancelled"
        assert job.state == "cancelled"
        assert job.done_event.is_set()
        assert manager.cancel("no-such-job") is None

    def test_kill_resume_of_queued_job(self, tmp_path):
        """Satellite: a journaled job survives its manager's death and
        completes under a fresh one (same state dir)."""
        state = tmp_path / "state"
        first = JobManager(str(state), workers=1)
        # submit without starting the pool: the journal now holds a
        # queued job, exactly like a daemon killed before pickup
        job = first.submit(_specs(3))
        assert job.state == "queued"

        second = JobManager(str(state), workers=1)
        second.start()
        try:
            recovered = second.get(job.id)
            assert recovered is not None
            assert second.wait(recovered, timeout=60)
            assert recovered.state == "done"
            direct = [execution_to_dict(r) for r in run_trials(_specs(3))]
            assert [
                e["result"] for e in second.results(recovered)
            ] == direct
        finally:
            second.shutdown()

    def test_failed_trials_complete_the_job(self, tmp_path):
        manager = _manager(tmp_path, workers=1, retries=0)
        manager.start()
        try:
            bad = TrialSpec("smm", cycle_graph(4), daemon="synchronous",
                            seed=1, options=(("no_such_option", 1),))
            job = manager.submit([bad] + _specs(1))
            assert manager.wait(job, timeout=60)
            assert job.state == "done"
            results = manager.results(job)
            assert results[0]["status"] == "failed"
            assert results[1]["status"] == "ok"
            assert job.progress["failed"] == 1
            # a failed trial must not poison the store
            assert manager.store.get(job.fingerprints[0]) is None
        finally:
            manager.shutdown()


# ----------------------------------------------------------------------
# e2e over HTTP
# ----------------------------------------------------------------------
@pytest.fixture
def http_server(tmp_path):
    app = ServeApp(str(tmp_path / "state"), workers=2, retries=1)
    server = ReproServer(app, port=0)
    server.start()
    yield server
    server.shutdown()


def _request(server, method, path, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def _parse_prometheus(text):
    """Minimal exposition-format parser: {metric key: value}.  Raises
    on any line that is neither a comment nor a valid sample."""
    samples = {}
    pattern = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?)\s+(-?[0-9.e+Inf]+)$"
    )
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = pattern.match(line)
        assert match is not None, f"unparseable exposition line: {line!r}"
        samples[match.group(1)] = float(match.group(2))
    return samples


class TestServeHTTP:
    def test_health_and_index(self, http_server):
        code, body, headers = _request(http_server, "GET", "/healthz")
        assert code == 200
        assert json.loads(body)["status"] == "ok"
        code, body, _ = _request(http_server, "GET", "/")
        assert code == 200
        assert "POST /v1/sweeps" in json.loads(body)["endpoints"]

    def test_full_loop_with_dedup_and_metrics(self, http_server):
        """The acceptance loop: submit -> poll -> results identical to
        run_trials, resubmit -> cache hit observed on /metrics."""
        body = {
            "mode": "async",
            "label": "e2e",
            "sweep": {
                "protocol": "smm",
                "family": "cycle",
                "n": 10,
                "trials": 3,
                "seed": 1234,
                # pin the backend: the server's resilient runner skips
                # batch-sweep dispatch, so 'auto' would legitimately
                # answer from a different (equivalent) kernel and the
                # byte-identity assertion below would see backend="batch"
                "backend": "reference",
            },
        }
        code, raw, _ = _request(http_server, "POST", "/v1/sweeps", body)
        assert code == 202
        job = json.loads(raw)["job"]
        assert job["state"] in ("queued", "running", "done")
        job_id = job["id"]

        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            code, raw, _ = _request(http_server, "GET", f"/v1/jobs/{job_id}")
            assert code == 200
            job = json.loads(raw)["job"]
            if job["state"] == "done":
                break
            time.sleep(0.05)
        assert job["state"] == "done"
        assert job["progress"]["completed"] == 3

        code, raw, _ = _request(
            http_server, "GET", f"/v1/jobs/{job_id}/result"
        )
        assert code == 200
        served = [e["result"] for e in json.loads(raw)["results"]]
        specs = parse_sweep_request(body).specs
        direct = [execution_to_dict(r) for r in run_trials(list(specs))]
        # byte-identical to the direct path, not merely equal
        assert json.dumps(served, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

        # resubmission: all trials served from the store
        code, raw, _ = _request(http_server, "POST", "/v1/sweeps", body)
        assert code == 202
        second_id = json.loads(raw)["job"]["id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            code, raw, _ = _request(
                http_server, "GET", f"/v1/jobs/{second_id}"
            )
            second = json.loads(raw)["job"]
            if second["state"] == "done":
                break
            time.sleep(0.05)
        assert second["progress"]["cached"] == 3
        assert second["progress"]["computed"] == 0

        # /metrics: parseable exposition, and the dedup hit is visible
        code, raw, headers = _request(http_server, "GET", "/metrics")
        assert code == 200
        assert headers["Content-Type"].startswith("text/plain")
        samples = _parse_prometheus(raw.decode())
        assert samples["repro_result_cache_hits_total"] == 3.0
        assert samples["repro_result_cache_misses_total"] == 3.0
        assert samples['repro_jobs_completed_total{state="done"}'] == 2.0
        assert samples["repro_jobs_submitted_total"] == 2.0
        assert any(
            key.startswith("repro_http_requests_total") for key in samples
        )

    def test_sync_mode_answers_inline(self, http_server):
        body = {
            "mode": "sync",
            "trials": [
                {
                    "protocol": "sis",
                    "graph": {"family": "path", "n": 7},
                    "seed": 5,
                }
            ],
        }
        code, raw, _ = _request(http_server, "POST", "/v1/sweeps", body)
        assert code == 200
        payload = json.loads(raw)
        assert payload["job"]["state"] == "done"
        (entry,) = payload["results"]
        assert entry["status"] == "ok"
        assert entry["result"]["protocol"] == "SIS"

    def test_telemetry_endpoint_streams_jsonl(self, http_server, tmp_path):
        body = {
            "mode": "sync",
            "sweep": {
                "protocol": "smm",
                "family": "cycle",
                "n": 8,
                "trials": 2,
                "seed": 77,
                "telemetry": True,
            },
        }
        code, raw, _ = _request(http_server, "POST", "/v1/sweeps", body)
        assert code == 200
        job_id = json.loads(raw)["job"]["id"]
        code, raw, headers = _request(
            http_server, "GET", f"/v1/jobs/{job_id}/telemetry"
        )
        assert code == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        lines = [line for line in raw.decode().splitlines() if line]
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert all("per_round_moves" in r for r in records)
        # and `repro dash` renders a saved copy
        from repro.observability.dash import write_report

        saved = tmp_path / "served-telemetry.jsonl"
        saved.write_bytes(raw)
        out = tmp_path / "report.html"
        summary = write_report(str(saved), str(out))
        assert out.exists()
        assert "2" in summary

    def test_error_paths(self, http_server):
        code, raw, _ = _request(http_server, "GET", "/v1/jobs/nope")
        assert code == 404
        code, raw, _ = _request(http_server, "GET", "/v1/jobs/nope/result")
        assert code == 404
        code, raw, _ = _request(http_server, "POST", "/v1/sweeps", {"trials": []})
        assert code == 400
        assert "error" in json.loads(raw)
        code, raw, _ = _request(http_server, "GET", "/v1/sweeps")
        assert code == 405
        code, raw, _ = _request(http_server, "GET", "/does/not/exist")
        assert code == 404
        # malformed JSON body
        request = urllib.request.Request(
            f"http://127.0.0.1:{http_server.port}/v1/sweeps",
            data=b"{not json",
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30):
                raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as error:
            assert error.code == 400

    def test_result_conflict_while_running(self, http_server):
        register_protocol("slow-http-test", _SlowMatching)
        try:
            body = {
                "mode": "async",
                "trials": [
                    {
                        "protocol": "slow-http-test",
                        "graph": {"family": "cycle", "n": 12},
                        "seed": 3,
                    }
                ],
            }
            code, raw, _ = _request(http_server, "POST", "/v1/sweeps", body)
            assert code == 202
            job_id = json.loads(raw)["job"]["id"]
            code, raw, _ = _request(
                http_server, "GET", f"/v1/jobs/{job_id}/result"
            )
            if code == 409:  # still queued/running (the expected race)
                assert "poll" in json.loads(raw)["error"]
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                code, raw, _ = _request(
                    http_server, "GET", f"/v1/jobs/{job_id}"
                )
                if json.loads(raw)["job"]["state"] == "done":
                    break
                time.sleep(0.05)
            code, _, _ = _request(
                http_server, "GET", f"/v1/jobs/{job_id}/result"
            )
            assert code == 200
        finally:
            del PROTOCOLS["slow-http-test"]


# ----------------------------------------------------------------------
# daemon kill / restart (the acceptance recovery loop)
# ----------------------------------------------------------------------
def _serve_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    return env


def _start_serve(state_dir, extra_args=()):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--state-dir",
            str(state_dir),
            "--workers",
            "1",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=_serve_env(),
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    assert match, f"no listen line from repro serve: {line!r}"
    return proc, int(match.group(1))


def _http(port, method, path, payload=None, timeout=30):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestServeKillRestart:
    def test_sigterm_then_restart_resumes_jobs(self, tmp_path):
        """Kill a busy daemon with SIGTERM: it exits cleanly without
        leaking /dev/shm, and a restart on the same state dir picks the
        interrupted job back up and finishes it."""
        state = tmp_path / "state"
        body = {
            "mode": "async",
            "sweep": {
                "protocol": "smm",
                "family": "er-sparse",
                "n": 400,
                "trials": 10,
                "seed": 2024,
                "backend": "reference",
            },
        }
        proc, port = _start_serve(state)
        try:
            code, payload = _http(port, "POST", "/v1/sweeps", body)
            assert code == 202
            job_id = payload["job"]["id"]
            time.sleep(1.0)  # let the sweep get properly underway
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == 0, out
        assert "shutdown complete" in out
        assert leaked_shared_segments() == []

        # the journal survived the kill
        assert (state / "jobs").is_dir()

        proc, port = _start_serve(state)
        try:
            deadline = time.monotonic() + 180
            job = None
            while time.monotonic() < deadline:
                code, payload = _http(port, "GET", f"/v1/jobs/{job_id}")
                assert code == 200, payload
                job = payload["job"]
                if job["state"] == "done":
                    break
                time.sleep(0.2)
            assert job is not None and job["state"] == "done", job
            # nothing was recomputed needlessly: every trial came from
            # the store, the checkpoint, or one fresh computation
            progress = job["progress"]
            assert progress["completed"] == 10
            assert (
                progress["cached"]
                + progress["computed"]
                + progress["resumed"]
                >= 10
            )
            code, payload = _http(
                port, "GET", f"/v1/jobs/{job_id}/result", timeout=60
            )
            assert code == 200
            assert len(payload["results"]) == 10
            assert all(e["status"] == "ok" for e in payload["results"])
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=10)
        assert leaked_shared_segments() == []


class TestResponseSchema:
    def test_results_journal_is_versioned(self, tmp_path):
        manager = _manager(tmp_path, workers=1)
        manager.start()
        try:
            job = manager.submit(_specs(1))
            assert manager.wait(job, timeout=60)
            with open(job.results_path, encoding="utf-8") as handle:
                payload = json.load(handle)
            assert payload["schema"] == SCHEMA_VERSION
            assert payload["id"] == job.id
        finally:
            manager.shutdown()


# ----------------------------------------------------------------------
# self-healing control plane: durable-store hardening, admission
# control, supervision/autoscaling, circuit breaking, torn journals
# ----------------------------------------------------------------------
def _metric_value(registry, name, **labels):
    """Sum of a counter family's samples, optionally filtered to one
    exact label set."""
    family = registry.to_dict().get(name)
    if family is None:
        return 0.0
    want = {str(k): str(v) for k, v in labels.items()}
    return sum(
        sample["value"]
        for sample in family["samples"]
        if not want or sample["labels"] == want
    )


class TestStoreHardening:
    def test_corrupt_entry_is_miss_and_quarantined(self, tmp_path):
        corrupted = []
        store = ResultStore(
            str(tmp_path / "store"), on_corrupt=corrupted.append
        )
        spec = _specs(1)[0]
        fp = spec_fingerprint(spec)
        store.fulfill(fp, {"status": "ok", "result": {"x": 1}})
        assert store.get(fp) is not None

        # torn write / bit rot: leave a JSON prefix behind
        with open(store.path(fp), "w", encoding="utf-8") as handle:
            handle.write('{"status": "ok", "resu')
        assert store.get(fp) is None  # miss, not a crash
        assert corrupted == [fp]
        assert not os.path.exists(store.path(fp))
        assert os.path.exists(store.path(fp) + ".corrupt")
        assert len(store) == 0  # quarantined files don't count

    def test_missing_entry_is_plain_miss(self, tmp_path):
        corrupted = []
        store = ResultStore(
            str(tmp_path / "store"), on_corrupt=corrupted.append
        )
        assert store.get("0" * 16) is None
        assert corrupted == []

    def test_sweep_recomputes_after_corruption(self, tmp_path):
        """Satellite regression: a truncated store entry must not crash
        or poison a sweep — the trial is recomputed and the final bytes
        match an untouched run."""
        manager = _manager(tmp_path, workers=1)
        manager.start()
        try:
            first = manager.submit(_specs(2))
            assert manager.wait(first, timeout=60)
            assert first.state == "done"
            reference = [e["result"] for e in manager.results(first)]

            victim = spec_fingerprint(_specs(2)[0])
            with open(
                manager.store.path(victim), "w", encoding="utf-8"
            ) as handle:
                handle.write('{"status"')

            second = manager.submit(_specs(2))
            assert manager.wait(second, timeout=60)
            assert second.state == "done"
            assert second.progress["computed"] == 1  # the victim
            assert second.progress["cached"] == 1  # the survivor
            assert [e["result"] for e in manager.results(second)] == reference
            assert (
                _metric_value(manager.registry, "repro_store_corrupt_total")
                >= 1
            )
            assert os.path.exists(manager.store.path(victim) + ".corrupt")
        finally:
            manager.shutdown()


class TestAdmissionControl:
    def test_queue_full_raises_with_retry_after(self, tmp_path):
        manager = _manager(tmp_path, workers=1, max_queue_depth=1)
        # not started: the queued job cannot drain, so depth is exact
        manager.submit(_specs(1))
        with pytest.raises(QueueFull) as excinfo:
            manager.submit(_specs(1, seed=500))
        assert excinfo.value.retry_after >= 1
        assert excinfo.value.depth == 1
        assert (
            _metric_value(
                manager.registry,
                "repro_serve_shed_total",
                reason="queue_full",
            )
            == 1
        )
        assert manager.saturation() == 1.0

    def test_draining_rejects_submissions(self, tmp_path):
        manager = _manager(tmp_path, workers=1)
        manager.start()
        manager.shutdown()
        with pytest.raises(Draining):
            manager.submit(_specs(1))
        assert (
            _metric_value(
                manager.registry, "repro_serve_shed_total", reason="draining"
            )
            == 1
        )

    def test_expired_deadline_sheds_queued_job(self, tmp_path):
        manager = _manager(
            tmp_path, workers=1, supervise_interval=0.05
        )
        job = manager.submit(_specs(1), deadline_s=0.01)
        time.sleep(0.1)  # expire while still queued
        manager.start()
        try:
            assert job.done_event.wait(30)
            assert job.state == "cancelled"
            assert "deadline" in job.error
            assert (
                _metric_value(
                    manager.registry,
                    "repro_serve_shed_total",
                    reason="deadline",
                )
                >= 1
            )
        finally:
            manager.shutdown()

    def test_deadline_survives_recovery(self, tmp_path):
        """A journaled deadline is enforced by the *next* process too."""
        manager = _manager(tmp_path, workers=1)
        job = manager.submit(_specs(1), deadline_s=0.01)
        job_id = job.id
        time.sleep(0.1)
        # simulate a crash-restart: a fresh manager on the same state
        second = _manager(tmp_path, workers=1, supervise_interval=0.05)
        second.start()
        try:
            recovered = second.get(job_id)
            assert recovered is not None
            assert recovered.done_event.wait(30)
            assert recovered.state == "cancelled"
            assert "deadline" in recovered.error
        finally:
            second.shutdown()

    def test_http_429_with_retry_after_header(self, tmp_path):
        app = ServeApp(
            str(tmp_path / "state"),
            workers=1,
            max_queue_depth=1,
            enable_chaos=True,
        )
        server = ReproServer(app, port=0)
        server.start()
        try:
            app.manager.chaos_stall_worker(3.0)  # pin the only worker
            time.sleep(0.2)
            body = {
                "mode": "async",
                "sweep": {
                    "protocol": "smm",
                    "family": "cycle",
                    "n": 8,
                    "trials": 1,
                    "seed": 1,
                    "backend": "reference",
                },
            }
            codes = []
            rejected_headers = []
            for seed in range(5):
                body["sweep"]["seed"] = seed
                code, raw, headers = _request(
                    server, "POST", "/v1/sweeps", body
                )
                codes.append(code)
                if code == 429:
                    rejected_headers.append((headers, json.loads(raw)))
            assert 429 in codes, codes
            assert 202 in codes, codes
            for headers, payload in rejected_headers:
                assert int(headers["Retry-After"]) >= 1
                assert payload["retry_after"] == int(headers["Retry-After"])
            # saturation + shed counter are scrapeable
            code, raw, _ = _request(server, "GET", "/metrics")
            samples = _parse_prometheus(raw.decode())
            assert samples['repro_serve_shed_total{reason="queue_full"}'] >= 1
            assert samples["repro_serve_queue_saturation"] == 1.0
        finally:
            server.shutdown()

    def test_http_503_when_draining(self, tmp_path):
        app = ServeApp(str(tmp_path / "state"), workers=1)
        server = ReproServer(app, port=0)
        server.start()
        try:
            app.manager._stop.set()  # what SIGTERM does first
            body = {
                "mode": "async",
                "sweep": {
                    "protocol": "smm",
                    "family": "cycle",
                    "n": 8,
                    "trials": 1,
                    "seed": 1,
                },
            }
            code, raw, headers = _request(server, "POST", "/v1/sweeps", body)
            assert code == 503
            assert "Retry-After" in headers
            code, raw, _ = _request(server, "GET", "/healthz")
            assert json.loads(raw)["status"] == "draining"
        finally:
            app.manager._stop.clear()  # let shutdown() run normally
            server.shutdown()

    def test_chaos_endpoint_is_gated(self, http_server):
        code, _, _ = _request(
            http_server, "POST", "/v1/chaos", {"fault": "kill_worker"}
        )
        assert code == 404  # not enabled on this server


class TestSupervisor:
    def test_crashed_worker_is_restarted(self, tmp_path):
        manager = _manager(
            tmp_path, workers=1, supervise_interval=0.05
        )
        manager.start()
        try:
            manager.chaos_kill_worker()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = manager.pool_stats()
                if stats["restarts"] >= 1 and stats["alive"] == stats["target"]:
                    break
                time.sleep(0.05)
            stats = manager.pool_stats()
            assert stats["restarts"] >= 1, stats
            assert stats["alive"] == stats["target"] == 1, stats
            assert (
                _metric_value(
                    manager.registry, "repro_serve_worker_restarts_total"
                )
                >= 1
            )
            # the restarted pool still serves jobs
            job = manager.submit(_specs(2))
            assert manager.wait(job, timeout=60)
            assert job.state == "done"
        finally:
            manager.shutdown()

    def test_autoscales_up_under_backlog_then_back_down(self, tmp_path):
        manager = _manager(
            tmp_path,
            workers=1,
            min_workers=1,
            max_workers=3,
            scale_up_after=0.1,
            scale_down_idle=0.2,
            supervise_interval=0.05,
        )
        manager.start()
        try:
            manager.chaos_stall_worker(2.0)  # pin so backlog sustains
            time.sleep(0.1)
            jobs = [
                manager.submit(_specs(2, seed=500 + i * 10))
                for i in range(5)
            ]
            grew = 1
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                grew = max(grew, manager.pool_stats()["target"])
                if grew > 1 and all(j.done_event.is_set() for j in jobs):
                    break
                time.sleep(0.02)
            assert grew > 1, "pool never scaled up under sustained backlog"
            assert all(j.state == "done" for j in jobs)
            # idle pool shrinks back to min_workers (and the retired
            # threads actually exit)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = manager.pool_stats()
                if stats["target"] == 1 and stats["alive"] == 1:
                    break
                time.sleep(0.05)
            stats = manager.pool_stats()
            assert stats["target"] == 1 and stats["alive"] == 1, stats
        finally:
            manager.shutdown()

    def test_shutdown_under_load_terminates(self, tmp_path):
        """Satellite 6 pin: shutdown with a full queue, busy workers,
        and an active supervisor must quiesce within the timeout — the
        supervisor may not resurrect workers after their poison pills
        are counted."""
        register_protocol("slow-shutdown-test", _SlowMatching)
        try:
            manager = _manager(
                tmp_path,
                workers=2,
                min_workers=1,
                max_workers=4,
                scale_up_after=0.1,
                supervise_interval=0.05,
            )
            manager.start()
            jobs = [
                manager.submit(
                    _specs(2, seed=900 + i, protocol="slow-shutdown-test")
                )
                for i in range(6)
            ]
            time.sleep(0.4)  # let work start and the autoscaler engage
            began = time.monotonic()
            manager.shutdown(timeout=30)
            assert time.monotonic() - began < 25
            assert manager._supervisor is None
            assert not manager._threads
            for job in jobs:
                # every job ended in a legal journaled state; running
                # ones were re-queued for the next process
                assert job.state in ("queued", "done", "cancelled")
        finally:
            del PROTOCOLS["slow-shutdown-test"]

    def test_worker_bounds_validated(self, tmp_path):
        with pytest.raises(ValueError):
            _manager(tmp_path, workers=2, max_workers=1)
        with pytest.raises(ValueError):
            _manager(tmp_path, workers=1, min_workers=2)
        with pytest.raises(ValueError):
            _manager(tmp_path, workers=1, min_workers=0)
        with pytest.raises(ValueError):
            _manager(tmp_path, workers=1, max_queue_depth=0)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self, tmp_path):
        manager = _manager(
            tmp_path, workers=1, circuit_threshold=2, retries=0
        )
        manager.start()
        try:
            bad = [
                TrialSpec(
                    "smm", cycle_graph(8), seed=1, backend="nonexistent"
                )
            ]
            error_types = []
            for _ in range(4):
                job = manager.submit(bad)
                assert manager.wait(job, timeout=60)
                error_types.append(job.entries[0].get("error_type"))
            # first two fail for real, then the breaker fails fast
            assert error_types[2:] == ["CircuitOpen", "CircuitOpen"]
            assert "CircuitOpen" not in error_types[:2]
            assert (
                _metric_value(
                    manager.registry, "repro_serve_circuit_open_total"
                )
                >= 2
            )
        finally:
            manager.shutdown()

    def test_open_circuit_does_not_affect_other_fingerprints(self, tmp_path):
        manager = _manager(
            tmp_path, workers=1, circuit_threshold=1, retries=0
        )
        manager.start()
        try:
            bad = [
                TrialSpec(
                    "smm", cycle_graph(8), seed=1, backend="nonexistent"
                )
            ]
            for _ in range(2):
                job = manager.submit(bad)
                assert manager.wait(job, timeout=60)
            assert job.entries[0]["error_type"] == "CircuitOpen"
            good = manager.submit(_specs(2))
            assert manager.wait(good, timeout=60)
            assert good.state == "done"
            assert all(e["status"] == "ok" for e in manager.results(good))
        finally:
            manager.shutdown()


class TestTornJournalRecovery:
    """Satellite property test: truncating any journal file at any byte
    offset before restart leaves every job recoverable to a legal state
    with no duplicate execution (the intact store answers everything)."""

    @pytest.mark.parametrize("case_seed", [0, 1, 2, 3, 4])
    def test_truncated_journals_recover(self, tmp_path, case_seed):
        import random
        import shutil

        origin = tmp_path / "origin"
        manager = JobManager(str(origin), workers=1)
        manager.start()
        job_ids = []
        try:
            for i in range(2):
                job = manager.submit(_specs(2, seed=1000 + 10 * i))
                assert manager.wait(job, timeout=60)
                assert job.state == "done"
                job_ids.append(job.id)
        finally:
            manager.shutdown()

        state = tmp_path / f"torn-{case_seed}"
        shutil.copytree(origin, state)
        rng = random.Random(case_seed)
        torn = {}
        for job_id in job_ids:
            directory = state / "jobs" / job_id
            name = rng.choice(
                ["job.json", "status.json", "checkpoint.jsonl"]
            )
            torn[job_id] = name
            path = directory / name
            data = path.read_bytes()
            path.write_bytes(data[: rng.randrange(0, max(1, len(data)))])

        recovered = JobManager(str(state), workers=1)
        recovered.start()
        try:
            for job_id in job_ids:
                job = recovered.get(job_id)
                if job is None:
                    # a strict prefix of job.json never parses: the job
                    # is unrecoverable and skipped, never half-loaded
                    assert torn[job_id] == "job.json"
                    continue
                assert job.state in (
                    "queued",
                    "running",
                    "done",
                    "failed",
                    "cancelled",
                )
                assert job.done_event.wait(60), job.state
                assert job.state == "done"
                if torn[job_id] == "status.json":
                    # the job was re-run from scratch — but the intact
                    # store answered every trial, so nothing executed
                    # twice
                    assert job.progress["completed"] == 2
                    assert job.progress["computed"] == 0
                    assert job.progress["cached"] == 2
                results = recovered.results(job)
                assert results is not None and len(results) == 2
        finally:
            recovered.shutdown()


class TestRunServerErrors:
    def test_bound_port_exits_2(self, tmp_path, capsys):
        import socket

        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            rc = run_server(
                state_dir=str(tmp_path / "state"), port=port
            )
        finally:
            blocker.close()
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot bind" in err
        assert err.count("\n") == 1  # one-line diagnostic, no traceback

    def test_cli_rejects_bad_worker_ordering(self, tmp_path):
        from repro.cli import main

        state = str(tmp_path / "state")
        for argv in (
            ["serve", "--state-dir", state, "--workers", "2",
             "--max-workers", "1"],
            ["serve", "--state-dir", state, "--workers", "1",
             "--min-workers", "2"],
            ["serve", "--state-dir", state, "--min-workers", "0"],
            ["serve", "--state-dir", state, "--max-queue-depth", "0"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
