"""The serve control plane: schema, store, jobs, and the HTTP loop.

Four layers, tested bottom-up:

* request schema — validation errors name the offending field, the
  generator form expands deterministically;
* result store — content addressing, atomic fulfil, single-writer
  leases, the cacheability rule (only seeded specs);
* job manager — submit/execute/cancel, the crash-safe journal,
  concurrent same-spec submissions coalescing onto one computation;
* e2e over real HTTP — submit → poll → results byte-identical to
  calling :func:`repro.parallel.run_trials` directly, resubmission
  observed as a dedup hit on ``repro_result_cache_hits_total``, and
  ``/metrics`` parsing as Prometheus text exposition.

The SIGTERM/restart recovery of a live daemon (journal + checkpoint +
``/dev/shm`` audit) runs the real ``repro serve`` CLI in a subprocess.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.serialize import SCHEMA_VERSION, execution_to_dict
from repro.graphs.generators import cycle_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.parallel import (
    TrialSpec,
    leaked_shared_segments,
    run_trials,
    spec_fingerprint,
)
from repro.parallel.trial_runner import PROTOCOLS, register_protocol
from repro.serve import (
    JobManager,
    ReproServer,
    RequestError,
    ResultStore,
    ServeApp,
    parse_sweep_request,
)


class _SlowMatching(SynchronousMaximalMatching):
    """SMM that naps per rule evaluation — makes trials overlap long
    enough for coalescing/interruption tests.  Module-level so forked
    workers can unpickle it."""

    def enabled_rule(self, view):
        time.sleep(0.02)
        return super().enabled_rule(view)


# ----------------------------------------------------------------------
# request schema
# ----------------------------------------------------------------------
class TestRequestSchema:
    def test_explicit_trials_form(self):
        request = parse_sweep_request(
            {
                "trials": [
                    {
                        "protocol": "smm",
                        "graph": {"family": "cycle", "n": 6},
                        "seed": 3,
                    }
                ]
            }
        )
        assert len(request.specs) == 1
        spec = request.specs[0]
        assert spec.protocol == "smm"
        assert spec.graph == cycle_graph(6)
        assert spec.seed == 3
        assert request.mode == "auto"

    def test_explicit_graph_form(self):
        request = parse_sweep_request(
            {
                "trials": [
                    {
                        "protocol": "sis",
                        "graph": {
                            "nodes": [0, 1, 2],
                            "edges": [[0, 1], [1, 2]],
                        },
                        "seed": 1,
                    }
                ]
            }
        )
        assert request.specs[0].graph.n == 3

    def test_sweep_form_expands_deterministically(self):
        body = {
            "sweep": {
                "protocol": "smm",
                "family": "cycle",
                "n": 8,
                "trials": 4,
                "seed": 99,
            }
        }
        first = parse_sweep_request(body).specs
        second = parse_sweep_request(body).specs
        assert len(first) == 4
        assert [spec_fingerprint(s) for s in first] == [
            spec_fingerprint(s) for s in second
        ]
        # distinct seeds -> distinct initial configurations/fingerprints
        assert len({spec_fingerprint(s) for s in first}) == 4
        # init="random" drew a configuration for every trial
        assert all(s.config is not None for s in first)

    def test_sweep_form_clean_init(self):
        body = {
            "sweep": {
                "protocol": "smm",
                "family": "cycle",
                "n": 8,
                "trials": 2,
                "seed": 5,
                "init": "clean",
            }
        }
        specs = parse_sweep_request(body).specs
        assert all(s.config is None for s in specs)

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ([], "JSON object"),
            ({}, "exactly one of"),
            ({"trials": [], "mode": "auto"}, "non-empty"),
            ({"trials": [{}], "sweep": {}}, "exactly one of"),
            ({"mode": "later", "trials": [{}]}, "mode"),
            ({"schema": 999, "trials": [{}]}, "schema version"),
            (
                {"trials": [{"protocol": "nope", "graph": {"family": "cycle", "n": 4}}]},
                "unknown protocol",
            ),
            (
                {"trials": [{"protocol": "smm", "graph": {"family": "moebius", "n": 4}}]},
                "moebius",
            ),
            (
                {"trials": [{"protocol": "smm", "graph": {"family": "cycle", "n": 0}}]},
                "positive integer",
            ),
            (
                {"trials": [{"protocol": "smm"}]},
                "graph is required",
            ),
            (
                {
                    "trials": [
                        {
                            "protocol": "smm",
                            "graph": {"family": "cycle", "n": 4},
                            "daemon": "chaotic",
                        }
                    ]
                },
                "daemon",
            ),
            (
                {
                    "trials": [
                        {
                            "protocol": "smm",
                            "graph": {"family": "cycle", "n": 4},
                            "config": {"7": 0},
                        }
                    ]
                },
                "not in the graph",
            ),
            ({"sweep": {"protocol": "smm", "family": "cycle", "n": 4, "trials": 0}}, "positive"),
            (
                {"sweep": {"protocol": "smm", "family": "cycle", "n": 4, "init": "warm"}},
                "init",
            ),
        ],
    )
    def test_rejects_with_field_naming_error(self, body, fragment):
        with pytest.raises(RequestError, match=re.escape(fragment)):
            parse_sweep_request(body)


# ----------------------------------------------------------------------
# result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_round_trip_and_hit(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        kind, event = store.lease("abc123")
        assert kind == "lease"
        store.fulfill("abc123", {"moves": 4})
        assert event.is_set()
        assert store.get("abc123") == {"moves": 4}
        kind, value = store.lease("abc123")
        assert kind == "hit" and value == {"moves": 4}
        assert len(store) == 1

    def test_second_lease_waits_then_reads(self, tmp_path):
        store = ResultStore(tmp_path)
        kind, _ = store.lease("fp")
        assert kind == "lease"
        kind, event = store.lease("fp")
        assert kind == "wait"
        seen = {}

        def follower():
            seen["result"], seen["timed_out"] = store.wait(
                "fp", event, timeout=5.0
            )

        thread = threading.Thread(target=follower)
        thread.start()
        store.fulfill("fp", {"ok": True})
        thread.join(5.0)
        assert seen["result"] == {"ok": True}
        assert seen["timed_out"] is False

    def test_abandon_wakes_waiters_without_result(self, tmp_path):
        store = ResultStore(tmp_path)
        store.lease("fp")
        kind, event = store.lease("fp")
        assert kind == "wait"
        store.abandon("fp")
        result, timed_out = store.wait("fp", event, timeout=0.1)
        assert result is None
        assert timed_out is False  # abandoned, not expired
        # the fingerprint is leasable again
        kind, _ = store.lease("fp")
        assert kind == "lease"

    def test_wait_reports_timeout_distinctly(self, tmp_path):
        """Regression: ``wait`` used to discard ``Event.wait``'s bool,
        so an expired wait on a still-computing leader looked exactly
        like an abandoned lease."""
        store = ResultStore(tmp_path)
        store.lease("fp")
        kind, event = store.lease("fp")
        assert kind == "wait"
        result, timed_out = store.wait("fp", event, timeout=0.01)
        assert result is None
        assert timed_out is True  # the leader is still computing
        # once the leader fulfills, a fresh wait succeeds immediately
        store.fulfill("fp", {"ok": 1})
        result, timed_out = store.wait("fp", event, timeout=0.01)
        assert result == {"ok": 1}
        assert timed_out is False

    def test_init_sweeps_crashed_leader_tmp_files(self, tmp_path):
        """Regression: a leader killed between writing its temp file and
        ``os.replace`` left ``<fp>.json.tmp.<pid>.<tid>`` behind forever;
        a fresh store over the same root must sweep it."""
        root = tmp_path / "results"
        store = ResultStore(root)
        store.lease("fp")
        store.fulfill("fp", {"moves": 2})
        # simulate the torn write of a crashed process
        stale = root / "deadbeef.json.tmp.12345.67890"
        stale.write_text('{"moves": 1', encoding="utf-8")
        unrelated = root / "notes.txt"
        unrelated.write_text("keep me", encoding="utf-8")

        reopened = ResultStore(root)
        assert not stale.exists()
        assert unrelated.exists()  # only temp files are swept
        assert reopened.get("fp") == {"moves": 2}
        assert len(reopened) == 1

    def test_cacheable_requires_seed(self):
        graph = cycle_graph(4)
        assert ResultStore.cacheable(TrialSpec("smm", graph, seed=0))
        assert not ResultStore.cacheable(TrialSpec("smm", graph))


# ----------------------------------------------------------------------
# job manager
# ----------------------------------------------------------------------
def _specs(count=3, n=8, seed=100, protocol="smm"):
    graph = cycle_graph(n)
    return [
        TrialSpec(protocol, graph, seed=seed + i) for i in range(count)
    ]


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    return JobManager(str(tmp_path / "state"), **kwargs)


class TestJobManager:
    def test_submit_execute_results(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        try:
            job = manager.submit(_specs(3))
            assert manager.wait(job, timeout=60)
            assert job.state == "done"
            results = manager.results(job)
            assert len(results) == 3
            assert all(e["status"] == "ok" for e in results)
            direct = [execution_to_dict(r) for r in run_trials(_specs(3))]
            assert [e["result"] for e in results] == direct
            # the journal survives: a fresh manager serves the same job
            assert job.progress["computed"] == 3
        finally:
            manager.shutdown()

    def test_resubmission_hits_store(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        try:
            first = manager.submit(_specs(2))
            assert manager.wait(first, timeout=60)
            second = manager.submit(_specs(2))
            assert manager.wait(second, timeout=60)
            assert second.progress["cached"] == 2
            assert second.progress["computed"] == 0
            assert manager.results(second) is not None
            assert [e["result"] for e in manager.results(second)] == [
                e["result"] for e in manager.results(first)
            ]
        finally:
            manager.shutdown()

    def test_unseeded_specs_never_cache(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        try:
            graph = cycle_graph(6)
            spec = TrialSpec("smm", graph)  # no seed
            for _ in range(2):
                job = manager.submit([spec])
                assert manager.wait(job, timeout=60)
                assert job.progress["computed"] == 1
                assert job.progress["cached"] == 0
            assert len(manager.store) == 0
        finally:
            manager.shutdown()

    def test_within_job_duplicates_collapse(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        try:
            spec = TrialSpec("smm", cycle_graph(8), seed=1)
            job = manager.submit([spec, spec, spec])
            assert manager.wait(job, timeout=60)
            assert job.progress["computed"] == 1
            assert job.progress["cached"] == 2
            results = manager.results(job)
            assert results[0]["result"] == results[1]["result"]
            assert results[1]["result"] == results[2]["result"]
        finally:
            manager.shutdown()

    def test_concurrent_same_spec_submissions_coalesce(self, tmp_path):
        """Satellite: two simultaneous same-spec submissions -> one
        computation, two identical results."""
        register_protocol("slow-serve-test", _SlowMatching)
        try:
            manager = _manager(tmp_path, workers=2)
            manager.start()
            try:
                graph = cycle_graph(10)
                spec = TrialSpec("slow-serve-test", graph, seed=7)
                first = manager.submit([spec])
                second = manager.submit([spec])
                assert manager.wait(first, timeout=120)
                assert manager.wait(second, timeout=120)
                jobs = [first, second]
                computed = sum(j.progress["computed"] for j in jobs)
                coalesced = sum(j.progress["coalesced"] for j in jobs)
                cached = sum(j.progress["cached"] for j in jobs)
                # exactly one computation; the other submission was
                # served by waiting on it (coalesced, then counted as a
                # cache hit when the result arrived)
                assert computed == 1
                assert cached == 1
                assert coalesced <= 1  # 0 if the first job won the race
                                       # before the second even leased
                (a,) = manager.results(first)
                (b,) = manager.results(second)
                assert a["result"] == b["result"]
                with manager.metrics_lock:
                    counters = manager.registry.to_dict(["counter"])
                misses = counters["repro_result_cache_misses_total"]["samples"]
                assert sum(s["value"] for s in misses) == 1
            finally:
                manager.shutdown()
        finally:
            del PROTOCOLS["slow-serve-test"]

    def test_cancel_queued_job(self, tmp_path):
        manager = _manager(tmp_path, workers=1)
        # no start(): nothing drains the queue, the job stays queued
        job = manager.submit(_specs(1))
        assert manager.cancel(job.id) == "cancelled"
        assert job.state == "cancelled"
        assert job.done_event.is_set()
        assert manager.cancel("no-such-job") is None

    def test_kill_resume_of_queued_job(self, tmp_path):
        """Satellite: a journaled job survives its manager's death and
        completes under a fresh one (same state dir)."""
        state = tmp_path / "state"
        first = JobManager(str(state), workers=1)
        # submit without starting the pool: the journal now holds a
        # queued job, exactly like a daemon killed before pickup
        job = first.submit(_specs(3))
        assert job.state == "queued"

        second = JobManager(str(state), workers=1)
        second.start()
        try:
            recovered = second.get(job.id)
            assert recovered is not None
            assert second.wait(recovered, timeout=60)
            assert recovered.state == "done"
            direct = [execution_to_dict(r) for r in run_trials(_specs(3))]
            assert [
                e["result"] for e in second.results(recovered)
            ] == direct
        finally:
            second.shutdown()

    def test_failed_trials_complete_the_job(self, tmp_path):
        manager = _manager(tmp_path, workers=1, retries=0)
        manager.start()
        try:
            bad = TrialSpec("smm", cycle_graph(4), daemon="synchronous",
                            seed=1, options=(("no_such_option", 1),))
            job = manager.submit([bad] + _specs(1))
            assert manager.wait(job, timeout=60)
            assert job.state == "done"
            results = manager.results(job)
            assert results[0]["status"] == "failed"
            assert results[1]["status"] == "ok"
            assert job.progress["failed"] == 1
            # a failed trial must not poison the store
            assert manager.store.get(job.fingerprints[0]) is None
        finally:
            manager.shutdown()


# ----------------------------------------------------------------------
# e2e over HTTP
# ----------------------------------------------------------------------
@pytest.fixture
def http_server(tmp_path):
    app = ServeApp(str(tmp_path / "state"), workers=2, retries=1)
    server = ReproServer(app, port=0)
    server.start()
    yield server
    server.shutdown()


def _request(server, method, path, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def _parse_prometheus(text):
    """Minimal exposition-format parser: {metric key: value}.  Raises
    on any line that is neither a comment nor a valid sample."""
    samples = {}
    pattern = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?)\s+(-?[0-9.e+Inf]+)$"
    )
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = pattern.match(line)
        assert match is not None, f"unparseable exposition line: {line!r}"
        samples[match.group(1)] = float(match.group(2))
    return samples


class TestServeHTTP:
    def test_health_and_index(self, http_server):
        code, body, headers = _request(http_server, "GET", "/healthz")
        assert code == 200
        assert json.loads(body)["status"] == "ok"
        code, body, _ = _request(http_server, "GET", "/")
        assert code == 200
        assert "POST /v1/sweeps" in json.loads(body)["endpoints"]

    def test_full_loop_with_dedup_and_metrics(self, http_server):
        """The acceptance loop: submit -> poll -> results identical to
        run_trials, resubmit -> cache hit observed on /metrics."""
        body = {
            "mode": "async",
            "label": "e2e",
            "sweep": {
                "protocol": "smm",
                "family": "cycle",
                "n": 10,
                "trials": 3,
                "seed": 1234,
                # pin the backend: the server's resilient runner skips
                # batch-sweep dispatch, so 'auto' would legitimately
                # answer from a different (equivalent) kernel and the
                # byte-identity assertion below would see backend="batch"
                "backend": "reference",
            },
        }
        code, raw, _ = _request(http_server, "POST", "/v1/sweeps", body)
        assert code == 202
        job = json.loads(raw)["job"]
        assert job["state"] in ("queued", "running", "done")
        job_id = job["id"]

        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            code, raw, _ = _request(http_server, "GET", f"/v1/jobs/{job_id}")
            assert code == 200
            job = json.loads(raw)["job"]
            if job["state"] == "done":
                break
            time.sleep(0.05)
        assert job["state"] == "done"
        assert job["progress"]["completed"] == 3

        code, raw, _ = _request(
            http_server, "GET", f"/v1/jobs/{job_id}/result"
        )
        assert code == 200
        served = [e["result"] for e in json.loads(raw)["results"]]
        specs = parse_sweep_request(body).specs
        direct = [execution_to_dict(r) for r in run_trials(list(specs))]
        # byte-identical to the direct path, not merely equal
        assert json.dumps(served, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

        # resubmission: all trials served from the store
        code, raw, _ = _request(http_server, "POST", "/v1/sweeps", body)
        assert code == 202
        second_id = json.loads(raw)["job"]["id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            code, raw, _ = _request(
                http_server, "GET", f"/v1/jobs/{second_id}"
            )
            second = json.loads(raw)["job"]
            if second["state"] == "done":
                break
            time.sleep(0.05)
        assert second["progress"]["cached"] == 3
        assert second["progress"]["computed"] == 0

        # /metrics: parseable exposition, and the dedup hit is visible
        code, raw, headers = _request(http_server, "GET", "/metrics")
        assert code == 200
        assert headers["Content-Type"].startswith("text/plain")
        samples = _parse_prometheus(raw.decode())
        assert samples["repro_result_cache_hits_total"] == 3.0
        assert samples["repro_result_cache_misses_total"] == 3.0
        assert samples['repro_jobs_completed_total{state="done"}'] == 2.0
        assert samples["repro_jobs_submitted_total"] == 2.0
        assert any(
            key.startswith("repro_http_requests_total") for key in samples
        )

    def test_sync_mode_answers_inline(self, http_server):
        body = {
            "mode": "sync",
            "trials": [
                {
                    "protocol": "sis",
                    "graph": {"family": "path", "n": 7},
                    "seed": 5,
                }
            ],
        }
        code, raw, _ = _request(http_server, "POST", "/v1/sweeps", body)
        assert code == 200
        payload = json.loads(raw)
        assert payload["job"]["state"] == "done"
        (entry,) = payload["results"]
        assert entry["status"] == "ok"
        assert entry["result"]["protocol"] == "SIS"

    def test_telemetry_endpoint_streams_jsonl(self, http_server, tmp_path):
        body = {
            "mode": "sync",
            "sweep": {
                "protocol": "smm",
                "family": "cycle",
                "n": 8,
                "trials": 2,
                "seed": 77,
                "telemetry": True,
            },
        }
        code, raw, _ = _request(http_server, "POST", "/v1/sweeps", body)
        assert code == 200
        job_id = json.loads(raw)["job"]["id"]
        code, raw, headers = _request(
            http_server, "GET", f"/v1/jobs/{job_id}/telemetry"
        )
        assert code == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        lines = [line for line in raw.decode().splitlines() if line]
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert all("per_round_moves" in r for r in records)
        # and `repro dash` renders a saved copy
        from repro.observability.dash import write_report

        saved = tmp_path / "served-telemetry.jsonl"
        saved.write_bytes(raw)
        out = tmp_path / "report.html"
        summary = write_report(str(saved), str(out))
        assert out.exists()
        assert "2" in summary

    def test_error_paths(self, http_server):
        code, raw, _ = _request(http_server, "GET", "/v1/jobs/nope")
        assert code == 404
        code, raw, _ = _request(http_server, "GET", "/v1/jobs/nope/result")
        assert code == 404
        code, raw, _ = _request(http_server, "POST", "/v1/sweeps", {"trials": []})
        assert code == 400
        assert "error" in json.loads(raw)
        code, raw, _ = _request(http_server, "GET", "/v1/sweeps")
        assert code == 405
        code, raw, _ = _request(http_server, "GET", "/does/not/exist")
        assert code == 404
        # malformed JSON body
        request = urllib.request.Request(
            f"http://127.0.0.1:{http_server.port}/v1/sweeps",
            data=b"{not json",
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30):
                raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as error:
            assert error.code == 400

    def test_result_conflict_while_running(self, http_server):
        register_protocol("slow-http-test", _SlowMatching)
        try:
            body = {
                "mode": "async",
                "trials": [
                    {
                        "protocol": "slow-http-test",
                        "graph": {"family": "cycle", "n": 12},
                        "seed": 3,
                    }
                ],
            }
            code, raw, _ = _request(http_server, "POST", "/v1/sweeps", body)
            assert code == 202
            job_id = json.loads(raw)["job"]["id"]
            code, raw, _ = _request(
                http_server, "GET", f"/v1/jobs/{job_id}/result"
            )
            if code == 409:  # still queued/running (the expected race)
                assert "poll" in json.loads(raw)["error"]
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                code, raw, _ = _request(
                    http_server, "GET", f"/v1/jobs/{job_id}"
                )
                if json.loads(raw)["job"]["state"] == "done":
                    break
                time.sleep(0.05)
            code, _, _ = _request(
                http_server, "GET", f"/v1/jobs/{job_id}/result"
            )
            assert code == 200
        finally:
            del PROTOCOLS["slow-http-test"]


# ----------------------------------------------------------------------
# daemon kill / restart (the acceptance recovery loop)
# ----------------------------------------------------------------------
def _serve_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    return env


def _start_serve(state_dir, extra_args=()):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--state-dir",
            str(state_dir),
            "--workers",
            "1",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=_serve_env(),
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    assert match, f"no listen line from repro serve: {line!r}"
    return proc, int(match.group(1))


def _http(port, method, path, payload=None, timeout=30):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestServeKillRestart:
    def test_sigterm_then_restart_resumes_jobs(self, tmp_path):
        """Kill a busy daemon with SIGTERM: it exits cleanly without
        leaking /dev/shm, and a restart on the same state dir picks the
        interrupted job back up and finishes it."""
        state = tmp_path / "state"
        body = {
            "mode": "async",
            "sweep": {
                "protocol": "smm",
                "family": "er-sparse",
                "n": 400,
                "trials": 10,
                "seed": 2024,
                "backend": "reference",
            },
        }
        proc, port = _start_serve(state)
        try:
            code, payload = _http(port, "POST", "/v1/sweeps", body)
            assert code == 202
            job_id = payload["job"]["id"]
            time.sleep(1.0)  # let the sweep get properly underway
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == 0, out
        assert "shutdown complete" in out
        assert leaked_shared_segments() == []

        # the journal survived the kill
        assert (state / "jobs").is_dir()

        proc, port = _start_serve(state)
        try:
            deadline = time.monotonic() + 180
            job = None
            while time.monotonic() < deadline:
                code, payload = _http(port, "GET", f"/v1/jobs/{job_id}")
                assert code == 200, payload
                job = payload["job"]
                if job["state"] == "done":
                    break
                time.sleep(0.2)
            assert job is not None and job["state"] == "done", job
            # nothing was recomputed needlessly: every trial came from
            # the store, the checkpoint, or one fresh computation
            progress = job["progress"]
            assert progress["completed"] == 10
            assert (
                progress["cached"]
                + progress["computed"]
                + progress["resumed"]
                >= 10
            )
            code, payload = _http(
                port, "GET", f"/v1/jobs/{job_id}/result", timeout=60
            )
            assert code == 200
            assert len(payload["results"]) == 10
            assert all(e["status"] == "ok" for e in payload["results"])
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=10)
        assert leaked_shared_segments() == []


class TestResponseSchema:
    def test_results_journal_is_versioned(self, tmp_path):
        manager = _manager(tmp_path, workers=1)
        manager.start()
        try:
            job = manager.submit(_specs(1))
            assert manager.wait(job, timeout=60)
            with open(job.results_path, encoding="utf-8") as handle:
                payload = json.load(handle)
            assert payload["schema"] == SCHEMA_VERSION
            assert payload["id"] == job.id
        finally:
            manager.shutdown()
