"""Zero-copy graph handoff: proxies, lifecycle, and /dev/shm hygiene.

The equivalence half (pool results byte-identical under every handoff
policy) lives in ``test_engine_equivalence.py``; this file pins the
mechanics — proxy behaviour, memoization, and above all that no
shared-memory segment outlives its sweep, whether the sweep completes,
raises, loses workers, or the whole parent process is SIGKILLed
(the resource tracker reclaims segments the parent never got to
unlink).
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.core.faults import random_configuration
from repro.engine import make_protocol
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.graphs.graph import Graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.parallel import (
    FailedTrial,
    MemoGraph,
    SharedGraph,
    SharedGraphStore,
    TrialRunner,
    TrialSpec,
    leaked_shared_segments,
    run_trials,
    spec_fingerprint,
)
from repro.parallel.shared_graph import SHARED_MIN_NODES
from repro.parallel.trial_runner import PROTOCOLS, register_protocol
from repro.rng import ensure_rng


def _graph(n=12, seed=0):
    return erdos_renyi_graph(n, 0.3, ensure_rng(seed))


def _specs(graph, count=3, backend="vectorized"):
    protocol = make_protocol("smm")
    return [
        TrialSpec(
            "smm",
            graph,
            random_configuration(protocol, graph, ensure_rng(s)),
            backend=backend,
        )
        for s in range(count)
    ]


class _CrashingMatching(SynchronousMaximalMatching):
    """SMM that kills its worker process outright — the WorkerDeath
    fixture.  Module-level so forked workers can unpickle it."""

    def enabled_rule(self, view):
        os._exit(13)


class TestProxies:
    def test_shared_graph_is_the_graph(self):
        graph = _graph()
        with SharedGraphStore(shared=True) as store:
            (packed,) = store.pack_specs(_specs(graph, count=1))
            proxy = packed.graph
            assert isinstance(proxy, SharedGraph)
            assert proxy == graph and hash(proxy) == hash(graph)
            assert proxy.nodes == graph.nodes and proxy.edges == graph.edges
            # fingerprints must not notice the wrapping, or resume
            # checkpoints would invalidate under the fast path
            original = _specs(graph, count=1)[0]
            assert spec_fingerprint(packed) == spec_fingerprint(original)

    def test_shared_graph_pickle_attaches_csr_views(self):
        import numpy as np

        graph = _graph(n=20, seed=1)
        with SharedGraphStore(shared=True) as store:
            (packed,) = store.pack_specs(_specs(graph, count=1))
            clone = pickle.loads(pickle.dumps(packed.graph))
            assert type(clone) is Graph
            assert clone == graph
            indptr, indices, ids = clone.adjacency_arrays()
            ref_indptr, ref_indices, ref_ids = graph.adjacency_arrays()
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)
            assert np.array_equal(ids, ref_ids)
            # the views are zero-copy: backed by the segment, read-only
            assert not indices.flags.writeable
            assert not indices.flags.owndata

    def test_memo_graph_round_trips_and_memoizes(self):
        from repro.parallel import shared_graph as sg

        graph = _graph(n=10, seed=2)
        with SharedGraphStore(shared=False) as store:
            packed = store.pack_specs(_specs(graph, count=2))
            proxies = [spec.graph for spec in packed]
            assert all(isinstance(p, MemoGraph) for p in proxies)
            assert proxies[0] is proxies[1]  # one payload per graph
            first = pickle.loads(pickle.dumps(proxies[0]))
            second = pickle.loads(pickle.dumps(proxies[1]))
            assert first == graph
            assert second is first  # memo hit, not a second deserialize
            sg._MEMO.clear()

    def test_auto_policy_splits_on_graph_size(self):
        small = cycle_graph(8)
        big = cycle_graph(SHARED_MIN_NODES)
        with SharedGraphStore(shared=None) as store:
            packed = store.pack_specs(
                _specs(small, count=1) + _specs(big, count=1)
            )
            assert isinstance(packed[0].graph, MemoGraph)
            assert isinstance(packed[1].graph, SharedGraph)

    def test_store_close_is_idempotent_and_unlinks(self):
        graph = _graph(n=16, seed=3)
        store = SharedGraphStore(shared=True)
        store.pack_specs(_specs(graph, count=1))
        assert leaked_shared_segments() != []
        store.close()
        assert leaked_shared_segments() == []
        store.close()  # second close: no error


class TestSweepHygiene:
    def test_no_segments_after_completed_pool_sweep(self):
        graph = _graph(n=30, seed=4)
        results = run_trials(
            _specs(graph, count=4), jobs=2, shared_graphs="always"
        )
        assert len(results) == 4
        assert leaked_shared_segments() == []

    def test_no_segments_after_sweep_that_raises(self):
        graph = _graph(n=30, seed=5)
        specs = _specs(graph, count=3)
        specs[1] = TrialSpec("no-such-protocol", graph)
        with pytest.raises(Exception):
            run_trials(specs, jobs=2, shared_graphs="always")
        assert leaked_shared_segments() == []

    def test_no_segments_after_worker_crash(self):
        register_protocol("crashing-test", _CrashingMatching)
        try:
            graph = _graph(n=30, seed=6)
            good = _specs(graph, count=1)
            crash = TrialSpec("crashing-test", graph)
            results = TrialRunner(
                jobs=2, retries=1, backoff=0.05, shared_graphs="always"
            ).map(good + [crash])
        finally:
            del PROTOCOLS["crashing-test"]
        assert not isinstance(results[0], FailedTrial)
        assert isinstance(results[1], FailedTrial)
        assert results[1].error_type == "WorkerDeath"
        assert leaked_shared_segments() == []

    def test_no_segments_after_kill_resume(self, tmp_path):
        # SIGKILL a parent mid-sweep: it never reaches store.close(),
        # so reclamation falls to the multiprocessing resource tracker
        # (the segments were created through the tracked path).  The
        # resumed sweep then completes and cleans up normally.
        ck = tmp_path / "sweep.jsonl"
        script = (
            "import os, sys, time\n"
            "from repro.graphs.generators import erdos_renyi_graph\n"
            "from repro.rng import ensure_rng\n"
            "from repro.parallel import SharedGraphStore, TrialSpec\n"
            "graph = erdos_renyi_graph(40, 0.3, ensure_rng(7))\n"
            "store = SharedGraphStore(shared=True)\n"
            "store.pack_specs([TrialSpec('smm', graph, backend='vectorized')])\n"
            "print('READY', flush=True)\n"
            "time.sleep(30)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ["src", env.get("PYTHONPATH", "")] if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            assert proc.stdout.readline().strip() == b"READY"
            assert leaked_shared_segments() != []  # segment exists now
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
        # the tracker notices the parent's death asynchronously
        deadline = time.monotonic() + 10
        while leaked_shared_segments() and time.monotonic() < deadline:
            time.sleep(0.1)
        assert leaked_shared_segments() == []
        # resume the sweep normally (checkpointed resilient mode)
        graph = _graph(n=40, seed=7)
        first = run_trials(
            _specs(graph, count=2),
            jobs=2,
            shared_graphs="always",
            checkpoint=str(ck),
        )
        again = run_trials(
            _specs(graph, count=2),
            jobs=2,
            shared_graphs="always",
            checkpoint=str(ck),
        )
        for a, b in zip(first, again):
            assert a.final == b.final
        assert leaked_shared_segments() == []


class _SlowSigMatching(SynchronousMaximalMatching):
    """SMM that naps per rule evaluation — slow enough to SIGTERM
    mid-sweep.  Module-level so forked workers can unpickle it."""

    def enabled_rule(self, view):
        time.sleep(0.005)
        return super().enabled_rule(view)


class TestSignalDrivenShutdown:
    """SIGTERM during a resilient sweep (PR 7 satellite): the runner
    converts it into an unwinding exception, so the checkpoint JSONL is
    flushed and every shm segment is unlinked before the process exits
    with the conventional 128+15 status."""

    _SCRIPT = """
import sys, time
from repro.graphs.generators import erdos_renyi_graph
from repro.rng import ensure_rng
from repro.matching.smm import SynchronousMaximalMatching
from repro.parallel import TrialRunner, TrialSpec
from repro.parallel.trial_runner import register_protocol

class SlowMatching(SynchronousMaximalMatching):
    def enabled_rule(self, view):
        time.sleep(0.005)
        return super().enabled_rule(view)

register_protocol("slow-sig-test", SlowMatching)
graph = erdos_renyi_graph(60, 0.1, ensure_rng(3))
specs = [TrialSpec("slow-sig-test", graph, seed=s) for s in range(6)]
runner = TrialRunner(
    jobs=1,
    checkpoint=sys.argv[1],
    shared_graphs="always",
    on_result=lambda i, outcome, resumed: print("DONE", i, flush=True),
)
runner.map(specs)
print("FINISHED", flush=True)
"""

    def test_sigterm_flushes_checkpoint_and_unlinks_shm(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ["src", env.get("PYTHONPATH", "")] if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", self._SCRIPT, str(ck)],
            stdout=subprocess.PIPE,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            text=True,
        )
        try:
            done = 0
            for line in proc.stdout:
                if line.startswith("DONE"):
                    done += 1
                if done == 2:
                    break
            assert done == 2, "sweep never produced two results"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == 143  # 128 + SIGTERM, via SweepInterrupted
        # the flushed checkpoint holds everything that completed
        lines = [
            line
            for line in ck.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        assert len(lines) >= 2
        # ... and the SIGTERM'd parent unlinked its segments on the way out
        assert leaked_shared_segments() == []

        # a resumed sweep completes from the checkpoint
        register_protocol("slow-sig-test", _SlowSigMatching)
        try:
            graph = erdos_renyi_graph(60, 0.1, ensure_rng(3))
            specs = [
                TrialSpec("slow-sig-test", graph, seed=s) for s in range(6)
            ]
            resumed_flags = []
            results = TrialRunner(
                jobs=1,
                checkpoint=str(ck),
                shared_graphs="always",
                on_result=lambda i, outcome, resumed: resumed_flags.append(
                    resumed
                ),
            ).map(specs)
        finally:
            del PROTOCOLS["slow-sig-test"]
        assert len(results) == 6
        assert not any(isinstance(r, FailedTrial) for r in results)
        assert resumed_flags.count(True) >= 2
        assert leaked_shared_segments() == []
