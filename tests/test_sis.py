"""Tests for Algorithm SIS (rules, Theorem 2, unique fixpoint)."""

import pytest
from hypothesis import given, settings

from repro.analysis.theory import sis_round_bound
from repro.core.configuration import Configuration
from repro.core.executor import enabled_nodes, run_central, run_synchronous
from repro.core.faults import random_configuration
from repro.core.protocol import View
from repro.errors import InvalidConfigurationError
from repro.experiments.common import exhaustive_configurations
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.properties import greedy_mis_by_descending_id
from repro.mis.sis import SynchronousMaximalIndependentSet, sis_round_bound as bound2
from repro.mis.verify import independent_set_of, verify_execution

from conftest import graphs_with_bits

SIS = SynchronousMaximalIndependentSet()


def view(node, state, neighbors):
    return View(node=node, state=state, neighbor_states=neighbors)


class TestRuleGuards:
    def test_r1_enters_without_bigger_in_set(self):
        v = view(5, 0, {3: 1, 4: 0})
        rule = SIS.enabled_rule(v)
        assert rule.name == "R1" and rule.fire(v) == 1

    def test_r1_blocked_by_bigger_in_set(self):
        v = view(2, 0, {5: 1})
        assert SIS.enabled_rule(v) is None

    def test_r1_not_blocked_by_smaller_in_set(self):
        """Smaller in-set neighbours do NOT block entry — the source of
        the non-closure of plain MIS-ness."""
        v = view(5, 0, {2: 1})
        assert SIS.enabled_rule(v).name == "R1"

    def test_r2_leaves_on_bigger_in_set(self):
        v = view(2, 1, {5: 1})
        rule = SIS.enabled_rule(v)
        assert rule.name == "R2" and rule.fire(v) == 0

    def test_r2_ignores_smaller_in_set(self):
        v = view(5, 1, {2: 1})
        assert SIS.enabled_rule(v) is None

    def test_isolated_node_enters(self):
        v = view(0, 0, {})
        assert SIS.enabled_rule(v).name == "R1"


class TestStateSpace:
    def test_initial_state(self):
        assert SIS.initial_state(3, cycle_graph(5)) == 0

    def test_random_state_binary(self, rng):
        g = cycle_graph(5)
        assert all(SIS.random_state(0, g, rng) in (0, 1) for _ in range(20))

    def test_validate_rejects_non_bit(self):
        with pytest.raises(InvalidConfigurationError):
            SIS.validate_state(0, cycle_graph(5), 2)


class TestLegitimacy:
    def test_greedy_set_legitimate(self):
        g = path_graph(5)
        greedy = greedy_mis_by_descending_id(g)
        cfg = {i: int(i in greedy) for i in g.nodes}
        assert SIS.is_legitimate(g, cfg)

    def test_non_canonical_mis_not_legitimate(self):
        g = path_graph(4)
        # {0, 2} is an MIS but not the greedy one {1, 3}
        assert not SIS.is_legitimate(g, {0: 1, 1: 0, 2: 1, 3: 0})

    def test_stable_iff_legitimate_exhaustive(self):
        g = cycle_graph(6)
        for cfg in exhaustive_configurations(SIS, g):
            stable = not enabled_nodes(SIS, g, cfg)
            assert stable == SIS.is_legitimate(g, cfg)

    def test_stable_set_helper(self):
        g = cycle_graph(7)
        assert SIS.stable_set(g) == greedy_mis_by_descending_id(g)


class TestTheorem2:
    @pytest.mark.parametrize("n", [4, 8, 16, 33])
    def test_cycle_within_bound(self, n):
        g = cycle_graph(n)
        ex = run_synchronous(SIS, g, max_rounds=sis_round_bound(n) + 2)
        verify_execution(g, ex, expect_greedy=True)
        assert ex.rounds <= sis_round_bound(n)

    def test_path_clean_start_takes_linear_rounds(self):
        """The Θ(n) cascade: ascending-id path from all-zero."""
        for n in (8, 16, 32):
            g = path_graph(n)
            ex = run_synchronous(SIS, g, max_rounds=n + 2)
            assert ex.stabilized
            assert ex.rounds >= n - 2  # essentially the full envelope

    def test_complete_graph_two_rounds(self):
        g = complete_graph(10)
        ex = run_synchronous(SIS, g)
        verify_execution(g, ex, expect_greedy=True)
        assert independent_set_of(ex.final) == {9}
        assert ex.rounds <= 2

    def test_star(self):
        g = star_graph(6)
        ex = run_synchronous(SIS, g)
        verify_execution(g, ex, expect_greedy=True)
        # hub is 0, leaves 1..5 all enter (no larger neighbour in set)
        assert independent_set_of(ex.final) == {1, 2, 3, 4, 5}

    def test_random_initial_states(self, rng):
        g = cycle_graph(12)
        for _ in range(25):
            cfg = random_configuration(SIS, g, rng)
            ex = run_synchronous(SIS, g, cfg)
            verify_execution(g, ex, expect_greedy=True)
            assert ex.rounds <= sis_round_bound(g.n)

    def test_exhaustive_c8(self):
        g = cycle_graph(8)
        for cfg in exhaustive_configurations(SIS, g):
            ex = run_synchronous(SIS, g, cfg, max_rounds=sis_round_bound(8))
            verify_execution(g, ex, expect_greedy=True)

    def test_bound_helpers_agree(self):
        g = cycle_graph(9)
        assert bound2(g) == sis_round_bound(9) == 9


class TestUniqueFixpoint:
    @settings(max_examples=40, deadline=None)
    @given(graphs_with_bits())
    def test_every_run_lands_on_greedy_set(self, graph_and_config):
        """Theorem 2 + uniqueness as a hypothesis property."""
        g, cfg = graph_and_config
        ex = run_synchronous(SIS, g, cfg, max_rounds=sis_round_bound(g.n) + 2)
        verify_execution(g, ex, expect_greedy=True)
        assert ex.rounds <= sis_round_bound(g.n)

    def test_initial_state_irrelevant(self, rng):
        g = cycle_graph(11)
        finals = set()
        for _ in range(10):
            cfg = random_configuration(SIS, g, rng)
            finals.add(run_synchronous(SIS, g, cfg).final)
        assert len(finals) == 1


class TestUnderOtherDaemons:
    def test_converges_under_central_daemon(self, rng):
        g = cycle_graph(9)
        cfg = random_configuration(SIS, g, rng)
        ex = run_central(SIS, g, cfg, strategy="random", rng=rng)
        verify_execution(g, ex, expect_greedy=True)

    def test_converges_under_distributed_daemon(self, rng):
        from repro.core.executor import run_distributed

        g = cycle_graph(9)
        cfg = random_configuration(SIS, g, rng)
        ex = run_distributed(SIS, g, cfg, rng=rng, activation_probability=0.5)
        verify_execution(g, ex, expect_greedy=True)
