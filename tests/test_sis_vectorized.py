"""Equivalence tests: vectorized SIS kernel vs the reference engine."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.executor import run_synchronous
from repro.core.faults import random_configuration
from repro.errors import StabilizationTimeout
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    greedy_mis_by_descending_id,
    is_maximal_independent_set,
)
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.sis_vectorized import VectorizedSIS

from conftest import graphs_with_bits

SIS = SynchronousMaximalIndependentSet()


class TestEncoding:
    def test_roundtrip(self):
        g = cycle_graph(5)
        vec = VectorizedSIS(g)
        cfg = {0: 1, 1: 0, 2: 1, 3: 0, 4: 0}
        assert vec.decode(vec.encode(cfg)) == cfg

    def test_non_contiguous_ids(self):
        g = Graph([7, 3, 9], [(3, 7), (7, 9)])
        vec = VectorizedSIS(g)
        cfg = {3: 1, 7: 0, 9: 1}
        assert vec.decode(vec.encode(cfg)) == cfg


class TestStepEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(graphs_with_bits(min_n=2, max_n=10))
    def test_round_by_round(self, graph_and_config):
        g, cfg = graph_and_config
        vec = VectorizedSIS(g)
        ref = run_synchronous(SIS, g, cfg, record_history=True)
        x = vec.encode(cfg)
        for expected in ref.history[1:]:
            x = vec.step(x)
            assert vec.decode(x) == expected

    def test_id_comparison_uses_ids_not_indices(self):
        """With non-contiguous ids the 'bigger' relation must compare
        ids, not dense indices (they coincide only for 0..n-1)."""
        g = Graph([5, 17, 40], [(5, 17), (17, 40)])
        vec = VectorizedSIS(g)
        res = vec.run({5: 0, 17: 0, 40: 0})
        assert vec.independent_set(res.final_x) == greedy_mis_by_descending_id(g)


class TestRun:
    def test_rounds_match_reference(self, rng):
        g = erdos_renyi_graph(30, 0.15, rng=2)
        cfg = random_configuration(SIS, g, rng)
        ref = run_synchronous(SIS, g, cfg)
        res = VectorizedSIS(g).run(cfg)
        assert res.stabilized
        assert res.rounds == ref.rounds
        assert res.moves == ref.moves
        assert res.moves_by_rule == ref.moves_by_rule

    def test_theorem_bound_large(self):
        g = erdos_renyi_graph(500, 0.015, rng=7)
        res = VectorizedSIS(g).run()
        assert res.stabilized and res.rounds <= g.n

    def test_final_set_is_greedy_mis(self, rng):
        g = erdos_renyi_graph(60, 0.1, rng=4)
        vec = VectorizedSIS(g)
        res = vec.run(random_configuration(SIS, g, rng))
        s = vec.independent_set(res.final_x)
        assert s == greedy_mis_by_descending_id(g)
        assert is_maximal_independent_set(g, s)

    def test_path_cascade_linear(self):
        g = path_graph(64)
        res = VectorizedSIS(g).run()
        assert res.stabilized and res.rounds >= 62

    def test_accepts_dense_array(self):
        g = path_graph(6)
        res = VectorizedSIS(g).run(np.zeros(6, dtype=np.int8))
        assert res.stabilized

    def test_timeout(self):
        g = path_graph(8)
        res = VectorizedSIS(g).run(max_rounds=0)
        assert not res.stabilized
        with pytest.raises(StabilizationTimeout):
            VectorizedSIS(g).run(max_rounds=0, raise_on_timeout=True)

    def test_stable_input_zero_rounds(self):
        g = path_graph(4)
        res = VectorizedSIS(g).run({0: 0, 1: 1, 2: 0, 3: 1})
        assert res.stabilized and res.rounds == 0
