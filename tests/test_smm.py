"""Tests for Algorithm SMM (rules, Theorem 1, Lemma 8)."""

import pytest
from hypothesis import given, settings

from repro.analysis.theory import smm_round_bound
from repro.core.configuration import Configuration
from repro.core.executor import enabled_nodes, run_synchronous
from repro.core.faults import random_configuration
from repro.core.protocol import View
from repro.errors import InvalidConfigurationError
from repro.experiments.common import exhaustive_configurations
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.matching.smm import (
    SynchronousMaximalMatching,
    max_id_chooser,
    min_id_chooser,
    theoretical_round_bound,
)
from repro.matching.verify import matching_of, verify_execution

from conftest import graphs_with_pointers

SMM = SynchronousMaximalMatching()


def view(node, state, neighbors):
    return View(node=node, state=state, neighbor_states=neighbors)


class TestRuleGuards:
    """Unit-level checks of R1/R2/R3 guards on hand-built views."""

    def test_r1_accepts_proposal(self):
        # node 1 is null, neighbour 0 points at it
        v = view(1, None, {0: 1, 2: None})
        rule = SMM.enabled_rule(v)
        assert rule.name == "R1"
        assert rule.fire(v) == 0

    def test_r1_min_proposer_default(self):
        v = view(1, None, {0: 1, 2: 1})
        assert SMM.enabled_rule(v).fire(v) == 0

    def test_r1_with_custom_accept_chooser(self):
        proto = SynchronousMaximalMatching(accept_chooser=max_id_chooser)
        v = view(1, None, {0: 1, 2: 1})
        assert proto.enabled_rule(v).fire(v) == 2

    def test_r2_proposes_to_min_null(self):
        v = view(1, None, {0: 2, 2: None, 3: None})
        rule = SMM.enabled_rule(v)
        assert rule.name == "R2"
        assert rule.fire(v) == 2

    def test_r2_blocked_by_proposer(self):
        # a suitor exists: R1 applies, never R2
        v = view(1, None, {0: 1, 2: None})
        assert SMM.enabled_rule(v).name == "R1"

    def test_r2_blocked_without_null_neighbor(self):
        v = view(1, None, {0: 2, 2: 0})
        assert SMM.enabled_rule(v) is None

    def test_r3_backs_off(self):
        # 1 -> 0, but 0 -> 2 (another node)
        v = view(1, 0, {0: 2, 2: None})
        rule = SMM.enabled_rule(v)
        assert rule.name == "R3"
        assert rule.fire(v) is None

    def test_r3_not_enabled_when_target_null(self):
        # 1 -> 0, 0 -> * : 1 waits (0 may accept next round)
        v = view(1, 0, {0: None, 2: None})
        assert SMM.enabled_rule(v) is None

    def test_matched_node_disabled(self):
        v = view(1, 0, {0: 1, 2: None})
        assert SMM.enabled_rule(v) is None


class TestStateSpace:
    def test_initial_state_null(self):
        assert SMM.initial_state(0, cycle_graph(4)) is None

    def test_random_state_in_space(self, rng):
        g = cycle_graph(6)
        for _ in range(30):
            s = SMM.random_state(2, g, rng)
            assert s is None or s in g.neighbors(2)

    def test_validate_rejects_non_neighbor(self):
        g = path_graph(4)
        with pytest.raises(InvalidConfigurationError):
            SMM.validate_state(0, g, 3)

    def test_validate_rejects_self(self):
        g = path_graph(4)
        with pytest.raises(InvalidConfigurationError):
            SMM.validate_state(0, g, 0)

    def test_sanitize_clears_dangling(self):
        g = path_graph(4)
        assert SMM.sanitize_state(0, g, 3) is None
        assert SMM.sanitize_state(0, g, 1) == 1
        assert SMM.sanitize_state(0, g, None) is None


class TestLegitimacy:
    def test_perfect_matching_legitimate(self):
        g = cycle_graph(4)
        assert SMM.is_legitimate(g, {0: 1, 1: 0, 2: 3, 3: 2})

    def test_non_maximal_not_legitimate(self):
        g = path_graph(4)
        # only nodes 0,1 matched; edge (2,3) still addable
        assert not SMM.is_legitimate(g, {0: 1, 1: 0, 2: None, 3: None})

    def test_dangling_pointer_not_legitimate(self):
        g = star_graph(4)
        # hub matched with 1; node 2 points at hub (unreciprocated)
        assert not SMM.is_legitimate(g, {0: 1, 1: 0, 2: 0, 3: None})

    def test_stable_iff_legitimate(self):
        """Lemma 8 both ways, exhaustively on C_4: no privileged node
        <=> legitimate configuration."""
        g = cycle_graph(4)
        for cfg in exhaustive_configurations(SMM, g):
            stable = not enabled_nodes(SMM, g, cfg)
            assert stable == SMM.is_legitimate(g, cfg)


class TestTheorem1:
    @pytest.mark.parametrize("n", [4, 8, 16, 33])
    def test_cycle_within_bound(self, n):
        g = cycle_graph(n)
        ex = run_synchronous(SMM, g, max_rounds=smm_round_bound(n) + 2)
        verify_execution(g, ex)
        assert ex.rounds <= smm_round_bound(n)

    @pytest.mark.parametrize("n", [2, 7, 16])
    def test_path_within_bound(self, n):
        g = path_graph(n)
        ex = run_synchronous(SMM, g)
        verify_execution(g, ex)
        assert ex.rounds <= smm_round_bound(n)

    def test_complete_graph(self):
        g = complete_graph(9)
        ex = run_synchronous(SMM, g)
        verify_execution(g, ex)
        # K_9: 4 matched edges, 1 node left over
        assert len(matching_of(ex.final)) == 4

    def test_random_initial_states(self, rng):
        g = cycle_graph(12)
        for _ in range(25):
            cfg = random_configuration(SMM, g, rng)
            ex = run_synchronous(SMM, g, cfg)
            verify_execution(g, ex)
            assert ex.rounds <= smm_round_bound(g.n)

    def test_exhaustive_c4(self):
        """All 81 configurations of C_4 stabilize within 5 rounds."""
        g = cycle_graph(4)
        for cfg in exhaustive_configurations(SMM, g):
            ex = run_synchronous(SMM, g, cfg, max_rounds=smm_round_bound(4))
            verify_execution(g, ex)

    def test_exhaustive_path5(self):
        g = path_graph(5)
        for cfg in exhaustive_configurations(SMM, g):
            ex = run_synchronous(SMM, g, cfg, max_rounds=smm_round_bound(5))
            verify_execution(g, ex)

    def test_bound_helper_matches_theory(self):
        g = cycle_graph(10)
        assert theoretical_round_bound(g) == smm_round_bound(10) == 11

    def test_star_matches_exactly_one_edge(self):
        g = star_graph(7)
        ex = run_synchronous(SMM, g)
        verify_execution(g, ex)
        assert len(matching_of(ex.final)) == 1


class TestLemma8Characterization:
    def test_final_unmatched_nodes_are_aloof(self, rng):
        g = cycle_graph(9)  # odd cycle: someone stays unmatched
        ex = run_synchronous(SMM, g, random_configuration(SMM, g, rng))
        matched = {x for e in matching_of(ex.final) for x in e}
        for node in g.nodes:
            if node not in matched:
                assert ex.final[node] is None


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(graphs_with_pointers())
    def test_stabilizes_within_theorem_bound(self, graph_and_config):
        """Theorem 1 as a hypothesis property: any connected graph, any
        pointer configuration."""
        g, cfg = graph_and_config
        ex = run_synchronous(SMM, g, cfg, max_rounds=smm_round_bound(g.n) + 2)
        verify_execution(g, ex)
        assert ex.rounds <= smm_round_bound(g.n)

    @settings(max_examples=30, deadline=None)
    @given(graphs_with_pointers())
    def test_matched_nodes_never_unmatch(self, graph_and_config):
        """Lemma 1 as a hypothesis property."""
        from repro.matching.classification import NodeType, classify

        g, cfg = graph_and_config
        ex = run_synchronous(SMM, g, cfg, record_history=True)
        previous = None
        for config in ex.history:
            types = classify(g, config)
            matched = {n for n, t in types.items() if t is NodeType.M}
            if previous is not None:
                assert previous <= matched
            previous = matched
