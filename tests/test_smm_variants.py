"""Tests for SMM variants and the paper's non-stabilization remark."""

import pytest

from repro.core.configuration import Configuration
from repro.core.executor import run_synchronous
from repro.experiments.common import detect_cycle
from repro.graphs.generators import cycle_graph, path_graph
from repro.matching.smm import SynchronousMaximalMatching, max_id_chooser
from repro.matching.variants import (
    ArbitraryChoiceSMM,
    RandomizedSMM,
    clockwise_chooser,
)
from repro.matching.verify import verify_execution


def all_null(graph) -> Configuration:
    return Configuration({i: None for i in graph.nodes})


class TestClockwiseCounterexample:
    """Section 3's closing remark, mechanized."""

    def test_c4_never_stabilizes(self):
        g = cycle_graph(4)
        proto = ArbitraryChoiceSMM(clockwise_chooser(4))
        ex = run_synchronous(proto, g, all_null(g), max_rounds=100, record_history=True)
        assert not ex.stabilized

    def test_c4_livelock_period_two(self):
        g = cycle_graph(4)
        proto = ArbitraryChoiceSMM(clockwise_chooser(4))
        ex = run_synchronous(proto, g, all_null(g), max_rounds=20, record_history=True)
        cycle = detect_cycle(ex.history)
        assert cycle is not None
        start, period = cycle
        assert period == 2

    def test_oscillation_alternates_propose_backoff(self):
        g = cycle_graph(4)
        proto = ArbitraryChoiceSMM(clockwise_chooser(4))
        ex = run_synchronous(proto, g, all_null(g), max_rounds=6)
        # odd rounds: everyone fires R2; even rounds: everyone fires R3
        assert set(ex.move_log[0].values()) == {"R2"}
        assert set(ex.move_log[1].values()) == {"R3"}
        assert set(ex.move_log[2].values()) == {"R2"}

    @pytest.mark.parametrize("n", [4, 8, 12])
    def test_all_even_cycles_livelock(self, n):
        g = cycle_graph(n)
        proto = ArbitraryChoiceSMM(clockwise_chooser(n))
        ex = run_synchronous(proto, g, all_null(g), max_rounds=60)
        assert not ex.stabilized

    def test_min_id_fixes_the_same_instance(self):
        """The exact configuration that livelocks the arbitrary variant
        stabilizes under the published min-id rule."""
        g = cycle_graph(4)
        smm = SynchronousMaximalMatching()
        ex = run_synchronous(smm, g, all_null(g))
        verify_execution(g, ex)
        assert ex.rounds <= 5


class TestArbitraryChoiceCanStabilize:
    def test_max_id_chooser_on_path(self):
        """Arbitrary choice is not *always* divergent — on asymmetric
        instances it may stabilize; correctness on stabilization is
        unchanged."""
        g = path_graph(6)
        proto = ArbitraryChoiceSMM(max_id_chooser)
        ex = run_synchronous(proto, g, all_null(g), max_rounds=100)
        if ex.stabilized:
            verify_execution(g, ex)

    def test_clockwise_on_odd_cycle_breaks_symmetry(self):
        """On odd cycles the ring cannot 2-colour its proposals, so the
        clockwise schedule cannot livelock in the all-null pattern
        forever; whatever happens must be correct if it stabilizes."""
        g = cycle_graph(5)
        proto = ArbitraryChoiceSMM(clockwise_chooser(5))
        ex = run_synchronous(proto, g, all_null(g), max_rounds=200)
        if ex.stabilized:
            verify_execution(g, ex)


class TestRandomizedSMM:
    def test_uses_randomness_flag(self):
        assert RandomizedSMM.uses_randomness is True

    def test_stabilizes_on_c4_almost_surely(self):
        g = cycle_graph(4)
        proto = RandomizedSMM()
        successes = 0
        for seed in range(10):
            ex = run_synchronous(proto, g, all_null(g), rng=seed, max_rounds=300)
            if ex.stabilized:
                verify_execution(g, ex)
                successes += 1
        assert successes >= 9  # a.s. convergence; generous slack

    def test_stabilizes_from_random_states(self, rng):
        from repro.core.faults import random_configuration

        g = cycle_graph(8)
        proto = RandomizedSMM()
        for _ in range(10):
            cfg = random_configuration(proto, g, rng)
            ex = run_synchronous(proto, g, cfg, rng=rng, max_rounds=500)
            assert ex.stabilized
            verify_execution(g, ex)


class TestClockwiseChooser:
    def test_prefers_clockwise(self):
        from repro.core.protocol import View

        choose = clockwise_chooser(6)
        v = View(node=2, state=None, neighbor_states={1: None, 3: None})
        assert choose(v, (1, 3)) == 3

    def test_falls_back_to_min(self):
        from repro.core.protocol import View

        choose = clockwise_chooser(6)
        v = View(node=2, state=None, neighbor_states={1: None})
        assert choose(v, (1,)) == 1
