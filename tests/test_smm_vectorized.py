"""Equivalence tests: vectorized SMM kernel vs the reference engine."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.executor import run_synchronous
from repro.core.faults import random_configuration
from repro.errors import InvalidConfigurationError, StabilizationTimeout
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.properties import is_maximal_matching
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.smm_vectorized import VectorizedSMM

from conftest import graphs_with_pointers

SMM = SynchronousMaximalMatching()


class TestEncoding:
    def test_roundtrip(self):
        g = cycle_graph(5)
        vec = VectorizedSMM(g)
        cfg = {0: 1, 1: 0, 2: None, 3: 4, 4: 3}
        assert vec.decode(vec.encode(cfg)) == cfg

    def test_non_contiguous_ids(self):
        g = Graph([10, 20, 30], [(10, 20), (20, 30)])
        vec = VectorizedSMM(g)
        cfg = {10: 20, 20: 10, 30: None}
        assert vec.decode(vec.encode(cfg)) == cfg

    def test_bad_pointer_rejected(self):
        g = cycle_graph(4)
        vec = VectorizedSMM(g)
        with pytest.raises(InvalidConfigurationError):
            vec.encode({0: 99, 1: None, 2: None, 3: None})


class TestStepEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(graphs_with_pointers(min_n=2, max_n=10))
    def test_round_by_round(self, graph_and_config):
        g, cfg = graph_and_config
        vec = VectorizedSMM(g)
        ref = run_synchronous(SMM, g, cfg, record_history=True)
        ptr = vec.encode(cfg)
        for expected in ref.history[1:]:
            ptr = vec.step(ptr)[0]
            assert vec.decode(ptr) == expected

    def test_larger_random_graphs(self, rng):
        for seed in range(5):
            g = erdos_renyi_graph(40, 0.1, rng=seed)
            cfg = random_configuration(SMM, g, rng)
            ref = run_synchronous(SMM, g, cfg, record_history=True)
            vec = VectorizedSMM(g)
            ptr = vec.encode(cfg)
            for expected in ref.history[1:]:
                ptr = vec.step(ptr)[0]
            assert vec.decode(ptr) == ref.final


class TestRun:
    def test_rounds_match_reference(self, rng):
        g = erdos_renyi_graph(30, 0.15, rng=2)
        cfg = random_configuration(SMM, g, rng)
        ref = run_synchronous(SMM, g, cfg)
        res = VectorizedSMM(g).run(cfg)
        assert res.stabilized
        assert res.rounds == ref.rounds
        assert res.moves == ref.moves
        assert res.moves_by_rule == ref.moves_by_rule

    def test_theorem_bound_large(self):
        g = erdos_renyi_graph(400, 0.02, rng=7)
        res = VectorizedSMM(g).run()
        assert res.stabilized and res.rounds <= g.n + 1

    def test_matching_extraction_maximal(self, rng):
        g = erdos_renyi_graph(50, 0.1, rng=4)
        vec = VectorizedSMM(g)
        res = vec.run(random_configuration(SMM, g, rng))
        m = vec.matching(res.final_ptr)
        assert is_maximal_matching(g, m)

    def test_accepts_dense_array_input(self):
        g = path_graph(6)
        vec = VectorizedSMM(g)
        ptr = np.full(6, -1, dtype=np.int64)
        res = vec.run(ptr)
        assert res.stabilized

    def test_timeout_flag(self):
        g = path_graph(8)
        res = VectorizedSMM(g).run(max_rounds=0)
        assert not res.stabilized

    def test_timeout_raise(self):
        g = path_graph(8)
        with pytest.raises(StabilizationTimeout):
            VectorizedSMM(g).run(max_rounds=0, raise_on_timeout=True)

    def test_stable_input_zero_rounds(self):
        g = path_graph(4)
        vec = VectorizedSMM(g)
        res = vec.run({0: 1, 1: 0, 2: 3, 3: 2})
        assert res.stabilized and res.rounds == 0
