"""Tests for the self-stabilizing BFS spanning tree extension."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.core.executor import run_central, run_synchronous
from repro.core.faults import (
    migrate_configuration,
    perturb_configuration,
    random_configuration,
)
from repro.errors import InvalidConfigurationError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.mutations import apply_churn
from repro.spanning.bfs_tree import (
    BfsSpanningTree,
    bfs_distances,
    is_bfs_tree,
    tree_edges,
)

from conftest import connected_graphs


class TestBfsDistances:
    def test_path(self):
        assert bfs_distances(path_graph(4), 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_star(self):
        d = bfs_distances(star_graph(5), 0)
        assert d[0] == 0 and all(d[i] == 1 for i in range(1, 5))

    def test_matches_networkx(self):
        g = erdos_renyi_graph(20, 0.15, rng=3)
        ours = bfs_distances(g, 0)
        theirs = nx.single_source_shortest_path_length(g.to_networkx(), 0)
        assert ours == dict(theirs)


class TestIsBfsTree:
    def test_accepts_correct_tree(self):
        g = path_graph(4)
        cfg = {0: (0, None), 1: (1, 0), 2: (2, 1), 3: (3, 2)}
        assert is_bfs_tree(g, 0, cfg)

    def test_rejects_wrong_distance(self):
        g = path_graph(3)
        assert not is_bfs_tree(g, 0, {0: (0, None), 1: (1, 0), 2: (1, 1)})

    def test_rejects_non_shortest_parent(self):
        g = cycle_graph(4)
        # node 2's two shortest parents are 1 and 3 (both level 1);
        # a parent at its own level is wrong
        cfg = {0: (0, None), 1: (1, 0), 2: (2, 1), 3: (1, 0)}
        assert is_bfs_tree(g, 0, cfg)
        bad = {0: (0, None), 1: (1, 0), 2: (2, 3), 3: (1, 0)}
        assert is_bfs_tree(g, 0, bad)  # 3 is also level 1: fine
        worse = {0: (0, None), 1: (1, 0), 2: (1, 1), 3: (1, 0)}
        assert not is_bfs_tree(g, 0, worse)

    def test_rejects_unanchored_root(self):
        g = path_graph(2)
        assert not is_bfs_tree(g, 0, {0: (1, 1), 1: (1, 0)})

    def test_tree_edges_count(self):
        g = path_graph(5)
        cfg = {0: (0, None), 1: (1, 0), 2: (2, 1), 3: (3, 2), 4: (4, 3)}
        assert len(tree_edges(cfg)) == 4


class TestProtocolBasics:
    def test_make_for_uses_min_id(self):
        g = cycle_graph(5)
        assert BfsSpanningTree.make_for(g).root_of(g) == 0

    def test_bad_root_type(self):
        with pytest.raises(InvalidConfigurationError):
            BfsSpanningTree("zero")

    def test_root_must_exist(self):
        with pytest.raises(InvalidConfigurationError):
            BfsSpanningTree(99).root_of(cycle_graph(4))

    def test_initial_state(self):
        g = path_graph(3)
        p = BfsSpanningTree(0)
        assert p.initial_state(0, g) == (0, None)
        assert p.initial_state(2, g) == (3, None)

    def test_random_state_valid(self, rng):
        g = cycle_graph(6)
        p = BfsSpanningTree(0)
        for node in g.nodes:
            for _ in range(10):
                p.validate_state(node, g, p.random_state(node, g, rng))

    def test_validate_rejects_non_neighbor_parent(self):
        g = path_graph(4)
        with pytest.raises(InvalidConfigurationError):
            BfsSpanningTree(0).validate_state(0, g, (1, 3))

    def test_sanitize_drops_dangling_parent(self):
        g = path_graph(4)
        p = BfsSpanningTree(0)
        assert p.sanitize_state(0, g, (2, 3)) == (2, None)
        assert p.sanitize_state(1, g, (1, 0)) == (1, 0)


class TestConvergence:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: path_graph(12),
            lambda: cycle_graph(12),
            lambda: star_graph(12),
            lambda: complete_graph(8),
            lambda: grid_graph(3, 4),
        ],
    )
    def test_clean_start_converges(self, make):
        g = make()
        p = BfsSpanningTree.make_for(g)
        ex = run_synchronous(p, g, max_rounds=p.round_bound(g))
        assert ex.stabilized and ex.legitimate

    def test_diameter_plus_one_rounds_from_clean(self):
        """From the clean start (all estimates at the ceiling), the
        correct wave costs about D+1 rounds."""
        g = path_graph(20)
        p = BfsSpanningTree(0)
        ex = run_synchronous(p, g)
        assert ex.stabilized
        assert ex.rounds <= 20 + 1

    def test_random_starts_converge(self, rng):
        for seed in range(6):
            g = erdos_renyi_graph(15, 0.2, rng=seed)
            p = BfsSpanningTree.make_for(g)
            cfg = random_configuration(p, g, rng)
            ex = run_synchronous(p, g, cfg, max_rounds=p.round_bound(g))
            assert ex.stabilized and ex.legitimate

    def test_non_minimum_root(self, rng):
        g = erdos_renyi_graph(12, 0.25, rng=2)
        p = BfsSpanningTree(root=7)
        cfg = random_configuration(p, g, rng)
        ex = run_synchronous(p, g, cfg, max_rounds=p.round_bound(g))
        assert ex.stabilized
        assert is_bfs_tree(g, 7, ex.final)

    def test_converges_under_central_daemon(self, rng):
        g = cycle_graph(9)
        p = BfsSpanningTree(0)
        cfg = random_configuration(p, g, rng)
        ex = run_central(p, g, cfg, strategy="random", rng=rng, max_moves=5000)
        assert ex.stabilized and ex.legitimate

    @settings(max_examples=25, deadline=None)
    @given(connected_graphs(min_n=2, max_n=10))
    def test_property_converges_within_bound(self, g):
        p = BfsSpanningTree.make_for(g)
        ex = run_synchronous(p, g, max_rounds=p.round_bound(g))
        assert ex.stabilized and ex.legitimate

    def test_tree_spans_all_nodes(self):
        g = erdos_renyi_graph(18, 0.2, rng=4)
        p = BfsSpanningTree.make_for(g)
        ex = run_synchronous(p, g)
        assert len(tree_edges(ex.final)) == g.n - 1


class TestFaultTolerance:
    def test_recovers_from_corruption(self, rng):
        g = erdos_renyi_graph(16, 0.2, rng=5)
        p = BfsSpanningTree.make_for(g)
        ex = run_synchronous(p, g)
        corrupted = perturb_configuration(p, g, ex.final, fraction=0.4, rng=rng)
        ex2 = run_synchronous(p, g, corrupted, max_rounds=p.round_bound(g))
        assert ex2.stabilized and ex2.legitimate

    def test_recovers_from_link_churn(self, rng):
        g = erdos_renyi_graph(16, 0.25, rng=6)
        p = BfsSpanningTree.make_for(g)
        ex = run_synchronous(p, g)
        g2, _ = apply_churn(g, 3, rng)
        migrated = migrate_configuration(p, g, g2, ex.final)
        ex2 = run_synchronous(p, g2, migrated, max_rounds=p.round_bound(g2))
        assert ex2.stabilized
        assert is_bfs_tree(g2, 0, ex2.final)

    def test_root_corruption_is_repaired_first(self):
        g = path_graph(5)
        p = BfsSpanningTree(0)
        ex = run_synchronous(p, g)
        broken = ex.final.updated({0: (3, 1)})
        ex2 = run_synchronous(p, g, broken)
        assert ex2.stabilized and ex2.legitimate
        assert ex2.move_log[0].get(0) == "R_root"


class TestAdHocIntegration:
    def test_over_beacons(self):
        from repro.adhoc import StaticPlacement, run_until_stable
        from repro.graphs.generators import random_geometric_graph

        g, pos = random_geometric_graph(14, 0.42, rng=9, return_positions=True)
        p = BfsSpanningTree.make_for(g)
        res = run_until_stable(p, StaticPlacement(pos), radius=0.42, rng=10)
        assert res.stabilized
        assert is_bfs_tree(g, 0, res.final)
