"""Tests for :mod:`repro.streaming` — the long-lived streaming-churn
engine — and the incremental CSR maintenance it rides on.

The load-bearing pin is byte-identity: a CSR patched through
:meth:`Graph.with_updates` must be indistinguishable from the CSR a
from-scratch ``Graph(nodes, edges)`` rebuild computes, over randomized
event sequences mixing edge and node inserts/deletes.  Everything the
vectorized stream backend does (dirty-frontier seeding, state
migration) sits on top of that equivalence.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.graphs.generators import cycle_graph, random_geometric_graph, random_tree
from repro.graphs.graph import Graph
from repro.observability.metrics import MetricsRegistry, use_registry
from repro.parallel.shared_graph import leaked_shared_segments
from repro.streaming import (
    StreamEngine,
    load_trace,
    poisson_plan,
    run_soak,
    run_stream,
)


def _assert_csr_identical(derived: Graph) -> None:
    """``derived``'s (possibly patched) CSR is byte-identical to the CSR
    a from-scratch construction of the same graph computes."""
    fresh = Graph(derived.nodes, derived.edges)
    got = derived.adjacency_arrays()
    want = fresh.adjacency_arrays()
    for name, a, b in zip(("indptr", "indices", "ids"), got, want):
        assert a.dtype == b.dtype == np.int64, name
        assert a.shape == b.shape, name
        assert np.array_equal(a, b), name
        assert a.tobytes() == b.tobytes(), name  # the actual pin
    assert derived.dense_index() == fresh.dense_index()
    # and the lazily materialized edge set agrees with the adjacency
    assert derived.edges == fresh.edges
    assert derived.m == fresh.m


class TestIncrementalCSR:
    def test_edge_patch_matches_rebuild(self):
        graph = cycle_graph(12)
        graph.adjacency_arrays()  # populate the cache so updates patch it
        derived = graph.with_updates(add_edges=[(0, 6)], remove_edges=[(2, 3)])
        assert derived._csr is not None  # patched, not dropped
        _assert_csr_identical(derived)

    def test_node_patch_matches_rebuild(self):
        graph = random_tree(10, rng=5)
        graph.adjacency_arrays()
        derived = graph.with_updates(
            add_nodes=[100, 101],
            add_edges=[(100, 0), (100, 101)],
            remove_nodes=[3],
        )
        assert derived._csr is not None
        _assert_csr_identical(derived)

    def test_noop_toggle_keeps_cache(self):
        graph = cycle_graph(8)
        graph.adjacency_arrays()
        derived = graph.with_updates(add_edges=[(0, 1)], remove_edges=[(0, 1)])
        _assert_csr_identical(derived)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_event_sequences_stay_byte_identical(self, seed):
        """Property: any applicable sequence of edge/node insert/delete
        events, applied incrementally, yields CSR arrays byte-identical
        to a from-scratch rebuild at every step."""
        rng = np.random.default_rng(seed)
        graph = random_geometric_graph(24, 0.35, int(rng.integers(1 << 16)))
        graph.adjacency_arrays()
        next_id = max(graph.nodes) + 1
        for _ in range(40):
            nodes = list(graph.nodes)
            edges = sorted(graph.edges)
            op = rng.choice(["add_edge", "remove_edge", "add_node", "remove_node"])
            if op == "add_edge" and len(nodes) >= 2:
                for _ in range(32):
                    u, v = (int(x) for x in rng.choice(nodes, size=2, replace=False))
                    e = (u, v) if u < v else (v, u)
                    if e not in graph.edges:
                        graph = graph.with_updates(add_edges=[e])
                        break
            elif op == "remove_edge" and edges:
                e = edges[int(rng.integers(len(edges)))]
                graph = graph.with_updates(remove_edges=[e])
            elif op == "add_node":
                attach = [] if not nodes else [
                    (next_id, int(nodes[int(rng.integers(len(nodes)))]))
                ]
                graph = graph.with_updates(add_nodes=[next_id], add_edges=attach)
                next_id += 1
            elif op == "remove_node" and len(nodes) > 2:
                victim = int(nodes[int(rng.integers(len(nodes)))])
                graph = graph.with_updates(remove_nodes=[victim])
            assert graph._csr is not None, "incremental patch was dropped"
            _assert_csr_identical(graph)

    def test_patch_only_applies_when_cache_exists(self):
        # without a cached CSR there is nothing to patch; the derived
        # graph just rebuilds lazily on first kernel construction
        graph = cycle_graph(6)
        derived = graph.with_updates(remove_edges=[(0, 1)])
        assert derived._csr is None
        _assert_csr_identical(derived)


class TestPoissonPlan:
    def test_deterministic_and_sorted(self):
        graph = random_tree(16, rng=2)
        a = poisson_plan(graph, rate=0.3, events=30, seed=9)
        b = poisson_plan(graph, rate=0.3, events=30, seed=9)
        assert a.to_dict() == b.to_dict()
        rounds = [e.round for e in a.events]
        assert rounds == sorted(rounds)

    def test_churn_sequence_is_always_applicable(self):
        graph = cycle_graph(10)
        plan = poisson_plan(graph, rate=2.0, events=60, seed=4, kinds=("churn",))
        for event in plan.events:
            graph = graph.with_updates(
                add_edges=event.add_edges, remove_edges=event.remove_edges
            )

    def test_crash_mix_keeps_a_node_alive(self):
        graph = random_tree(6, rng=1)
        plan = poisson_plan(
            graph, rate=1.0, events=50, seed=3,
            kinds=("churn", "crash", "perturb"),
        )
        assert any(e.kind == "crash" for e in plan.events)

    def test_bad_arguments_raise(self):
        graph = cycle_graph(4)
        with pytest.raises(ExperimentError):
            poisson_plan(graph, rate=0, events=3)
        with pytest.raises(ExperimentError):
            poisson_plan(graph, rate=1.0, events=3, kinds=("meteor",))
        with pytest.raises(ExperimentError):
            poisson_plan(graph, rate=1.0, events=3, kinds=())


class TestLoadTrace:
    def test_fault_plan_json_round_trip(self, tmp_path):
        plan = poisson_plan(cycle_graph(8), rate=0.5, events=10, seed=7)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(plan.to_dict()), encoding="utf-8")
        assert load_trace(path).to_dict() == plan.to_dict()

    def test_jsonl_events_with_seed_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"seed": 11}\n'
            '{"round": 1, "kind": "perturb", "nodes": [2]}\n'
            '{"round": 4, "kind": "churn", "remove_edges": [[0, 1]]}\n',
            encoding="utf-8",
        )
        plan = load_trace(path)
        assert plan.seed == 11
        assert [e.kind for e in plan.events] == ["perturb", "churn"]

    def test_bad_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ExperimentError):
            load_trace(path)


class TestStreamEngine:
    @pytest.mark.parametrize("protocol", ["smm", "sis"])
    def test_backends_agree_on_all_slo_counters(self, protocol):
        """The deterministic aggregate (everything except wall-clock) is
        byte-identical between the reference engine and the vectorized
        dirty-frontier path, across every event kind."""
        graph = cycle_graph(20)
        plan = poisson_plan(
            graph, rate=0.7, events=40, seed=13,
            kinds=("churn", "perturb", "message_dup", "crash"),
        )
        ref = run_stream(protocol, graph, plan, backend="reference")
        vec = run_stream(protocol, graph, plan, backend="vectorized")
        assert ref.counters() == vec.counters()

    def test_report_invariants_and_final_legitimacy(self):
        graph = random_tree(24, rng=8)
        engine = StreamEngine("smm", graph, backend="vectorized")
        plan = poisson_plan(graph, rate=0.4, events=25, seed=21)
        report = engine.run(plan)
        assert report.events == len(plan.events)
        assert 0 <= report.recovered <= report.events
        assert sum(report.rounds_dist.values()) == report.events
        assert report.recovery_rounds_total == sum(
            k * v for k, v in report.rounds_dist.items()
        )
        if report.p50_rounds is not None and report.p99_rounds is not None:
            assert report.p50_rounds <= report.p99_rounds
        # the run ends with a settle window: the live config must be a
        # legitimate configuration of the churned graph
        assert engine.protocol.is_legitimate(engine.graph, engine.config())

    def test_engine_clock_rebasing_across_plans(self):
        graph = cycle_graph(12)
        engine = StreamEngine("sis", graph, backend="vectorized")
        first = poisson_plan(graph, rate=0.5, events=5, seed=1)
        engine.run(first)
        mid_rounds = engine.elapsed_rounds
        second = poisson_plan(engine.graph, rate=0.5, events=5, seed=2)
        report = engine.run(second)
        assert report.events == 10
        assert engine.elapsed_rounds > mid_rounds

    def test_samples_window_is_bounded(self):
        graph = cycle_graph(10)
        plan = poisson_plan(graph, rate=1.0, events=30, seed=5)
        report = run_stream("smm", graph, plan, sample_cap=8)
        assert len(report.samples) == 8
        assert report.events == 30  # aggregates still cover everything
        assert report.samples[-1].index == report.events - 1

    def test_unknown_protocol_and_backend_raise(self):
        graph = cycle_graph(4)
        with pytest.raises(ExperimentError):
            StreamEngine("nope", graph)
        with pytest.raises(ExperimentError):
            StreamEngine("smm", graph, backend="quantum")

    def test_metrics_emitted_into_ambient_registry(self):
        registry = MetricsRegistry()
        graph = cycle_graph(12)
        plan = poisson_plan(graph, rate=0.5, events=12, seed=6)
        with use_registry(registry):
            report = run_stream("smm", graph, plan)
        text = registry.exposition()
        assert "repro_stream_events_total" in text
        assert "repro_stream_restabilize_rounds" in text
        assert "repro_stream_events_per_second" in text
        payload = json.loads(registry.to_json())
        events = sum(
            s["value"]
            for s in payload["repro_stream_events_total"]["samples"]
        )
        assert events == report.events


class TestSoakSmoke:
    def test_bounded_soak_leaves_nothing_behind(self):
        """CI's soak smoke: a chunked never-restarting run stays inside
        its wall-clock budget, reports bounded memory, and leaks no
        shared-memory segments."""
        graph = random_tree(32, rng=3)
        out = run_soak(
            "sis",
            graph,
            rate=0.5,
            chunk_events=16,
            max_seconds=5.0,
            max_chunks=3,
            seed=42,
            sample_cap=32,
        )
        assert out["chunks"] == 3
        report = out["report"]
        assert report.events == out["events"] == 48
        assert out["rounds"] == report.rounds > 0
        assert len(report.samples) <= 32
        assert 0 < out["max_rss_kb"] < 4_000_000  # well under 4 GB
        assert leaked_shared_segments() == []
