"""Tests for the execution trace formatter."""

import pytest

from repro.analysis.traces import (
    format_execution,
    format_round,
    rule_firing_summary,
)
from repro.core.executor import run_synchronous
from repro.graphs.generators import cycle_graph, path_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet

SIS = SynchronousMaximalIndependentSet()
SMM = SynchronousMaximalMatching()


class TestFormatRound:
    def test_shows_rule_and_new_state(self):
        g = path_graph(3)
        ex = run_synchronous(SIS, g, record_history=True)
        line = format_round(ex, 1)
        assert line.startswith("round 1:")
        assert "R1->1" in line

    def test_without_states(self):
        g = path_graph(3)
        ex = run_synchronous(SIS, g, record_history=True)
        line = format_round(ex, 1, show_states=False)
        assert "->" not in line

    def test_no_history_omits_states(self):
        g = path_graph(3)
        ex = run_synchronous(SIS, g)
        assert "->" not in format_round(ex, 1)

    def test_out_of_range(self):
        g = path_graph(3)
        ex = run_synchronous(SIS, g)
        with pytest.raises(IndexError):
            format_round(ex, 99)


class TestFormatExecution:
    def test_full_narrative(self):
        g = cycle_graph(6)
        ex = run_synchronous(SMM, g, record_history=True)
        text = format_execution(g, ex)
        assert text.startswith("initial:")
        assert "stabilized after" in text
        assert "legitimate=True" in text

    def test_null_pointer_symbol(self):
        g = cycle_graph(4)
        ex = run_synchronous(SMM, g, record_history=True)
        assert "⊥" in format_execution(g, ex)

    def test_round_elision(self):
        g = cycle_graph(12)
        ex = run_synchronous(SMM, g, record_history=True)
        assert ex.rounds > 3
        text = format_execution(g, ex, max_rounds=2)
        assert "more rounds" in text

    def test_divergent_run_flagged(self):
        from repro.matching.variants import ArbitraryChoiceSMM, clockwise_chooser

        g = cycle_graph(4)
        bad = ArbitraryChoiceSMM(clockwise_chooser(4))
        ex = run_synchronous(
            bad, g, {i: None for i in g.nodes}, max_rounds=6, record_history=True
        )
        assert "DID NOT stabilize" in format_execution(g, ex)

    def test_tuple_states_render(self):
        from repro.domination.mds import MinimalDominatingSet

        g = path_graph(3)
        mds = MinimalDominatingSet()
        ex = run_synchronous(mds, g, max_rounds=5, record_history=True)
        text = format_execution(g, ex)
        assert "(" in text  # tuple states visible


class TestRuleFiringSummary:
    def test_counterexample_rhythm(self):
        from repro.matching.variants import ArbitraryChoiceSMM, clockwise_chooser

        g = cycle_graph(4)
        bad = ArbitraryChoiceSMM(clockwise_chooser(4))
        ex = run_synchronous(bad, g, {i: None for i in g.nodes}, max_rounds=4)
        summary = rule_firing_summary(ex)
        assert "[4,4,4,4]" in summary

    def test_zero_round_run(self):
        g = path_graph(4)
        ex = run_synchronous(SIS, g, {0: 0, 1: 1, 2: 0, 3: 1})
        assert "[-]" in rule_firing_summary(ex)
