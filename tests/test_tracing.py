"""Tests for :mod:`repro.observability.tracing` — the span tree, its
ambient installation, the engine/trial-runner/campaign threading, and
the Chrome ``trace_event`` export.

The structural contract: span *names, nesting and counter-valued
attributes* are deterministic for a given sweep whatever ``--jobs`` is
(timestamps of course are not), runs without a tracer pay nothing, and
tracing never changes a run's result.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import run as engine_run
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.observability import (
    Span,
    Tracer,
    chrome_trace,
    current_tracer,
    use_tracer,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.parallel.trial_runner import TrialSpec, execute_trial, run_trials
from repro.resilience import FaultEvent, FaultPlan


def span_shape(exported):
    """``(name, sorted attr names)`` tuples, depth-first — the
    deterministic part of an exported span tree."""

    def walk(node):
        yield node["name"], node.get("attrs", {})
        for child in node.get("children", ()):
            yield from walk(child)

    return [
        (name, attrs) for root in exported for name, attrs in walk(root)
    ]


class TestSpanTree:
    def test_begin_end_nesting(self):
        tracer = Tracer()
        outer = tracer.begin("outer", a=1)
        inner = tracer.begin("inner")
        tracer.end(inner)
        tracer.end(outer, b=2)
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [s.name for s in tracer.roots[0].children] == ["inner"]
        assert tracer.roots[0].attrs == {"a": 1, "b": 2}
        assert tracer.roots[0].dur >= tracer.roots[0].children[0].dur >= 0

    def test_end_closes_dangling_children(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.begin("left-open")
        tracer.end(outer)
        # the stack is drained down to the ended span
        assert tracer.begin("next") in tracer.roots

    def test_span_contextmanager_and_record(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            start = tracer.now()
            tracer.record("timed", start, tracer.now(), detail="x")
        assert [c.name for c in span.children] == ["timed"]
        assert span.children[0].attrs == {"detail": "x"}

    def test_walk_and_dict_roundtrip(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        [root] = tracer.roots
        assert [s.name for s in root.walk()] == ["a", "b", "c"]
        clone = Span.from_dict(json.loads(json.dumps(root.to_dict())))
        assert [s.name for s in clone.walk()] == ["a", "b", "c"]

    def test_graft_keeps_producer_pid(self):
        worker = Tracer()
        with worker.span("remote"):
            pass
        fragment = worker.export()[0]
        parent = Tracer()
        grafted = parent.graft(fragment, trial=3)
        assert grafted.attrs["trial"] == 3
        assert parent.export()[0]["pid"] == worker.pid


class TestAmbientTracer:
    def test_default_is_none(self):
        assert current_tracer() is None

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with use_tracer(None):
                assert current_tracer() is None
            assert current_tracer() is tracer
        assert current_tracer() is None


class TestEngineSpans:
    def test_run_span_with_phases(self):
        # phases come from the telemetry wall-clocks, so they appear on
        # runs that carry telemetry (explicitly requested or campaign)
        tracer = Tracer()
        with use_tracer(tracer):
            result = engine_run(
                "smm", cycle_graph(8), backend="reference", telemetry=True
            )
        [root] = tracer.export()
        assert root["name"] == "run:smm"
        assert root["attrs"]["backend"] == "reference"
        assert root["attrs"]["rounds"] == result.rounds
        assert [c["name"] for c in root["children"]] == [
            "phase:setup",
            "phase:rounds",
            "phase:finalize",
        ]
        # phases tile the run span exactly
        start, dur = root["ts"], root["dur"]
        children = root["children"]
        assert children[0]["ts"] == pytest.approx(start)
        assert sum(c["dur"] for c in children) == pytest.approx(dur)

    def test_plain_traced_run_has_span_without_phases(self):
        # a plain run collects no telemetry, traced or not — the span
        # is pure parent-side bookkeeping (the ≤5% overhead pin), so it
        # has no phase children
        tracer = Tracer()
        with use_tracer(tracer):
            result = engine_run("smm", cycle_graph(8), backend="reference")
        [root] = tracer.export()
        assert root["name"] == "run:smm"
        assert root["attrs"]["rounds"] == result.rounds
        assert root["children"] == []

    def test_tracing_does_not_change_result(self):
        graph = erdos_renyi_graph(12, 0.3, rng=7)
        plain = engine_run("smm", graph, backend="vectorized", rng=1)
        with use_tracer(Tracer()):
            traced = engine_run("smm", graph, backend="vectorized", rng=1)
        assert traced.final == plain.final
        assert traced.rounds == plain.rounds
        assert traced.telemetry is None  # tracing collects no telemetry

    def test_elapsed_stamped_on_every_result(self):
        result = engine_run("smm", cycle_graph(8), backend="reference")
        assert result.elapsed is not None and result.elapsed >= 0.0

    def test_untraced_run_has_no_trace(self):
        result = engine_run("smm", cycle_graph(6))
        assert result.trace is None


class TestTrialRunnerSpans:
    def _specs(self, k=3):
        return [
            TrialSpec("smm", cycle_graph(10), seed=i, backend="auto")
            for i in range(k)
        ]

    def test_worker_fragment_on_traced_spec(self):
        spec = TrialSpec(
            "smm", cycle_graph(8), seed=0, backend="auto", trace=True
        )
        result = execute_trial(spec)
        assert result.trace is not None
        assert result.trace[0]["name"] == "run:smm"

    def test_span_structure_identical_across_jobs(self):
        shapes = {}
        for jobs in (1, 3):
            tracer = Tracer()
            with use_tracer(tracer):
                run_trials(self._specs(), jobs=jobs)
            shapes[jobs] = span_shape(tracer.export())
        assert shapes[1] == shapes[3]
        names = [name for name, _ in shapes[1]]
        assert names.count("run:smm") == 3
        trials = [
            attrs["trial"]
            for name, attrs in shapes[1]
            if name == "run:smm"
        ]
        assert trials == [0, 1, 2]  # grafted in spec order

    def test_resilient_annotations(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        specs = self._specs(2)
        with use_tracer(Tracer()):
            run_trials(specs, jobs=2, checkpoint=str(ckpt))
        tracer = Tracer()
        with use_tracer(tracer):
            results = run_trials(specs, jobs=2, checkpoint=str(ckpt))
        assert all(r.trace is None for r in results)
        shape = span_shape(tracer.export())
        resumed = [a for n, a in shape if n.startswith("trial:")]
        assert len(resumed) == 2
        assert all(a["resumed"] is True for a in resumed)

    def test_campaign_fault_event_spans(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="perturb", round=3, fraction=0.25),),
            seed=5,
        )
        tracer = Tracer()
        with use_tracer(tracer):
            result = engine_run(
                "smm",
                cycle_graph(12),
                backend="reference",
                rng=2,
                fault_plan=plan,
            )
        [root] = tracer.export()
        fault_spans = [
            c for c in root["children"] if c["name"].startswith("fault:")
        ]
        assert len(fault_spans) == len(result.telemetry.fault_events)
        [span] = fault_spans
        event = result.telemetry.fault_events[0]
        assert span["name"] == "fault:perturb"
        assert span["attrs"]["recovered"] == event["recovered"]
        assert span["attrs"]["recovery_rounds"] == event["recovery_rounds"]
        # the recovery window sits inside the run span
        assert span["ts"] >= root["ts"]
        assert span["ts"] + span["dur"] <= root["ts"] + root["dur"] + 1e-6


class TestChromeExport:
    def _exported(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run_trials(
                [
                    TrialSpec("smm", cycle_graph(8), seed=i, backend="auto")
                    for i in range(2)
                ],
                jobs=2,
            )
        return tracer.export()

    def test_schema_validates(self):
        data = chrome_trace(self._exported())
        count = validate_chrome_trace(data)
        assert count > 0
        assert data["displayTimeUnit"] == "ms"

    def test_events_rebased_to_microseconds(self):
        data = chrome_trace(self._exported())
        events = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in events) == pytest.approx(0.0, abs=1.0)
        assert all(e["dur"] >= 0 for e in events)

    def test_worker_pids_become_thread_lanes(self):
        data = chrome_trace(self._exported())
        names = {
            e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names  # one lane per producing process
        assert all(n.startswith("worker pid=") for n in names)

    def test_write_and_validate_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._exported())
        data = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(data) > 0

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"nope": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})


class TestCLITrace:
    def test_run_with_trace_writes_chrome_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.json"
        code = main(["run", "E1", "--quick", f"--trace={path}"])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote trace" in out
        data = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(data) > 0
        names = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert "experiment:E1" in names
        assert "run:smm" in names
