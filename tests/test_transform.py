"""Tests for the central→synchronous daemon refinement."""

import pytest

from repro.core.executor import run_central, run_synchronous
from repro.core.faults import random_configuration
from repro.core.transform import BEACON_ROUNDS_PER_STEP, run_synchronized_central
from repro.errors import ProtocolError, StabilizationTimeout
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.matching.hsu_huang import HsuHuangMatching
from repro.matching.smm import max_id_chooser
from repro.matching.verify import verify_execution
from repro.mis.sis import SynchronousMaximalIndependentSet

HH = HsuHuangMatching()


class TestRefinementCorrectness:
    @pytest.mark.parametrize("priority", ["id", "random"])
    def test_converges_to_legitimate(self, priority, rng):
        for seed in range(4):
            g = erdos_renyi_graph(12, 0.3, rng=seed)
            cfg = random_configuration(HH, g, rng)
            ex = run_synchronized_central(HH, g, cfg, priority=priority, rng=rng)
            verify_execution(g, ex)

    def test_movers_form_independent_set(self, rng):
        """The serializability core: no two adjacent nodes ever move in
        the same refinement round."""
        g = erdos_renyi_graph(14, 0.3, rng=5)
        cfg = random_configuration(HH, g, rng)
        ex = run_synchronized_central(HH, g, cfg, priority="random", rng=rng)
        for movers in ex.move_log:
            nodes = list(movers)
            for i, u in enumerate(nodes):
                for v in nodes[i + 1:]:
                    assert not g.has_edge(u, v), (u, v)

    def test_defeats_the_livelock(self):
        """The adversarial clockwise Hsu–Huang livelocks raw-sync but
        stabilizes under the refinement (moves are serialized)."""
        from repro.matching.variants import clockwise_chooser

        g = cycle_graph(8)
        adversarial = HsuHuangMatching(propose_chooser=clockwise_chooser(8))
        cfg = {i: None for i in g.nodes}
        raw = run_synchronous(adversarial, g, cfg, max_rounds=60)
        assert not raw.stabilized
        refined = run_synchronized_central(adversarial, g, cfg, priority="id")
        verify_execution(g, refined)

    def test_equivalent_to_some_central_schedule(self, rng):
        """Each refined run's final configuration is reachable by a
        central daemon (here: both reach legitimate fixpoints from the
        same start — full schedule equality is not required, only
        correctness of both)."""
        g = path_graph(8)
        cfg = random_configuration(HH, g, rng)
        refined = run_synchronized_central(HH, g, cfg, priority="id")
        central = run_central(HH, g, cfg, strategy="min-id")
        verify_execution(g, refined)
        verify_execution(g, central)

    def test_every_refined_round_replays_serially(self, rng):
        """The serializability core, replayed explicitly: applying each
        refined round's movers one at a time (in any order — here
        ascending id) through the *central-daemon semantics* must (a)
        find each mover privileged with the same rule at its turn and
        (b) land on the same configuration as the parallel step."""
        from repro.core.executor import build_view

        g = erdos_renyi_graph(14, 0.3, rng=6)
        cfg = random_configuration(HH, g, rng)
        ex = run_synchronized_central(
            HH, g, cfg, priority="random", rng=rng, record_history=True
        )
        assert ex.history is not None
        for t, movers in enumerate(ex.move_log):
            serial = ex.history[t]
            for node in sorted(movers):
                view = build_view(HH, g, serial, node)
                rule = HH.enabled_rule(view)
                assert rule is not None and rule.name == movers[node]
                serial = serial.updated({node: rule.fire(view)})
            assert serial == ex.history[t + 1]


class TestAccounting:
    def test_beacon_round_multiplier(self):
        g = path_graph(6)
        cfg = {i: None for i in g.nodes}
        raw = run_synchronized_central(HH, g, cfg, priority="id")
        beacon = run_synchronized_central(
            HH, g, cfg, priority="id", count_beacon_rounds=True
        )
        assert beacon.rounds == BEACON_ROUNDS_PER_STEP * raw.rounds
        assert beacon.moves == raw.moves

    def test_daemon_label(self):
        g = path_graph(4)
        ex = run_synchronized_central(HH, g, {i: None for i in g.nodes})
        assert ex.daemon == "sync-central-refined:id"

    def test_zero_round_run(self):
        g = path_graph(4)
        stable = {0: 1, 1: 0, 2: 3, 3: 2}
        ex = run_synchronized_central(HH, g, stable)
        assert ex.stabilized and ex.rounds == 0

    def test_history_and_monitors(self):
        from repro.core.invariants import HistoryMonitor

        g = path_graph(6)
        mon = HistoryMonitor()
        ex = run_synchronized_central(
            HH, g, {i: None for i in g.nodes}, record_history=True, monitors=[mon]
        )
        assert ex.history is not None
        assert len(ex.history) == ex.rounds + 1
        assert len(mon.configurations) == ex.rounds + 1


class TestErrors:
    def test_unknown_priority_scheme(self):
        g = path_graph(4)
        with pytest.raises(ProtocolError):
            run_synchronized_central(
                HH, g, {i: None for i in g.nodes}, priority="fifo"
            )

    def test_raise_on_timeout(self):
        g = path_graph(8)
        with pytest.raises(StabilizationTimeout):
            run_synchronized_central(
                HH,
                g,
                {i: None for i in g.nodes},
                max_rounds=0,
                raise_on_timeout=True,
            )


class TestWorksForOtherProtocols:
    def test_sis_through_refinement(self, rng):
        """SIS needs no refinement, but running it through one must
        still converge to the same unique fixpoint (serial schedules
        are a subset of what SIS tolerates)."""
        from repro.graphs.properties import greedy_mis_by_descending_id
        from repro.mis.verify import independent_set_of

        g = cycle_graph(9)
        sis = SynchronousMaximalIndependentSet()
        cfg = random_configuration(sis, g, rng)
        ex = run_synchronized_central(sis, g, cfg, priority="id")
        assert ex.stabilized
        assert independent_set_of(ex.final) == greedy_mis_by_descending_id(g)
