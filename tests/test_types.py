"""Tests for repro.types."""

import pytest

from repro.types import canonical_edge


class TestCanonicalEdge:
    def test_sorted_pair_unchanged(self):
        assert canonical_edge(1, 3) == (1, 3)

    def test_reversed_pair_sorted(self):
        assert canonical_edge(3, 1) == (1, 3)

    def test_negative_ids(self):
        assert canonical_edge(5, -2) == (-2, 5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            canonical_edge(4, 4)

    def test_idempotent(self):
        e = canonical_edge(9, 2)
        assert canonical_edge(*e) == e
